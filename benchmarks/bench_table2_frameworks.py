"""Table 2: high-level comparison of the graph frameworks."""

from repro.harness import report, table2
from benchmarks.conftest import register_benchmark


def test_table2(regenerate):
    rows = regenerate(table2)
    print()
    print(report.render_rows(
        rows,
        columns=["framework", "programming_model", "multi_node", "language",
                 "graph_partitioning", "communication_layer"],
        title="Table 2: framework comparison",
    ))

    by_name = {row["framework"]: row for row in rows}
    assert by_name["Native"]["communication_layer"] == "mpi"
    assert by_name["CombBLAS"]["graph_partitioning"] == "2-D"
    assert by_name["GraphLab"]["programming_model"] == "vertex program"
    assert by_name["SociaLite"]["programming_model"] == "datalog"
    assert not by_name["Galois"]["multi_node"]
    assert by_name["Giraph"]["language"] == "Java"
    assert by_name["Giraph"]["communication_layer"] == "netty-hadoop"


register_benchmark("table2", table2, artifact="table2")
