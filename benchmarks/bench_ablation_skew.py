"""Ablation: how much of the pain is degree skew? (the paper's premise)

"Real-world graph data follows a pattern of sparsity, that is not
uniform but highly skewed towards a few items. Implementing graph
[algorithms] on such data in a scalable manner is quite challenging."

Same vertex/edge budget, three degree structures (regular lattice,
uniform random, RMAT power-law): measure load imbalance under naive 1-D
partitioning and each structure's multi-node PageRank cost.
"""

import numpy as np

from repro.datagen import rmat_graph
from repro.datagen.uniform import erdos_renyi_graph, ring_lattice_graph
from repro.graph import gini_coefficient, partition_vertices_1d
from repro.harness import run_experiment
from benchmarks.conftest import register_benchmark


def build_graphs(scale=13):
    n = 1 << scale
    rmat = rmat_graph(scale, edge_factor=8, seed=3)
    uniform = erdos_renyi_graph(n, rmat.num_edges, seed=3)
    lattice = ring_lattice_graph(n, degree=max(rmat.num_edges // n, 1))
    return {"lattice": lattice, "uniform": uniform, "rmat": rmat}


def measure(nodes=8):
    graphs = build_graphs()
    rows = {}
    for name, graph in graphs.items():
        owners = partition_vertices_1d(graph.num_vertices,
                                       nodes).owner_of_many(graph.sources())
        per_node = np.bincount(owners, minlength=nodes)
        run = run_experiment("pagerank", "graphlab", graph, nodes=nodes,
                             scale_factor=2000.0, iterations=3)
        rows[name] = {
            "edges": graph.num_edges,
            "gini": gini_coefficient(graph.out_degrees()),
            "imbalance": float(per_node.max() / max(per_node.mean(), 1.0)),
            "pagerank_s": run.runtime(),
        }
    return rows


def test_skew_is_the_hard_part(regenerate):
    rows = regenerate(measure)
    print()
    print("Same edge budget, three degree structures (8 nodes, GraphLab):")
    print(f"  {'structure':<10} {'edges':>9} {'degree gini':>12} "
          f"{'1-D imbalance':>14} {'PR s/iter':>11}")
    for name, row in rows.items():
        print(f"  {name:<10} {row['edges']:>9,} {row['gini']:>12.3f} "
              f"{row['imbalance']:>14.2f} {row['pagerank_s']:>11.4f}")

    # Edge budgets comparable (within 40%).
    edges = [row["edges"] for row in rows.values()]
    assert max(edges) < 1.4 * min(edges)
    # Skew ordering: lattice (0) < uniform < rmat.
    assert rows["lattice"]["gini"] < 0.01
    assert rows["uniform"]["gini"] < rows["rmat"]["gini"]
    # Load imbalance under naive partitioning follows the skew.
    assert rows["lattice"]["imbalance"] <= rows["uniform"]["imbalance"] * 1.05
    assert rows["rmat"]["imbalance"] > rows["uniform"]["imbalance"]


register_benchmark("ablation_skew", measure, artifact="ablation")
