"""Ablation: sender-side message combining in the vertex engine.

GraphLab/CombBLAS "perform a limited form of compression that takes
advantage of local reductions to avoid repeated communication of the
same vertex data" (Section 6.1.1); Giraph's lack of it is a roadmap item
(Section 6.2). This bench measures the wire-byte effect directly.
"""

import numpy as np

from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph
from repro.frameworks.base import GRAPHLAB
from repro.frameworks.vertex import BSPEngine
from benchmarks.conftest import register_benchmark


def measure(nodes=8):
    graph = rmat_graph(scale=13, edge_factor=16, seed=17)
    engine = BSPEngine(graph, Cluster(paper_cluster(nodes)), GRAPHLAB, "1d")
    senders = np.arange(graph.num_vertices)
    combined = engine.edge_messages(senders, 8.0, combine=True)
    raw = engine.edge_messages(senders, 8.0, combine=False)
    return {
        "messages_combined": combined.messages,
        "messages_raw": raw.messages,
        "bytes_combined": float(combined.traffic.sum()),
        "bytes_raw": float(raw.traffic.sum()),
        "edges": graph.num_edges,
    }


def test_combiner_reduces_wire_bytes(regenerate):
    result = regenerate(measure)
    reduction = result["bytes_raw"] / result["bytes_combined"]
    print()
    print(f"PageRank-style exchange over {result['edges']} edges, 8 nodes:")
    print(f"  without combiner: {result['messages_raw']:.0f} messages, "
          f"{result['bytes_raw']:.0f} B")
    print(f"  with combiner:    {result['messages_combined']:.0f} messages, "
          f"{result['bytes_combined']:.0f} B")
    print(f"  reduction: {reduction:.2f}x")

    assert result["messages_combined"] < result["messages_raw"]
    assert reduction > 1.1
    # Uncombined message count equals the edge count (one per edge).
    assert result["messages_raw"] == result["edges"]


register_benchmark("ablation_combiners", measure, artifact="ablation")
