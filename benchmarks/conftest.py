"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures
exactly once (``rounds=1``): the interesting output is the regenerated
artifact printed to stdout (run with ``-s`` to see it) and the asserted
paper-shape invariants, with pytest-benchmark recording how long the
regeneration takes.

This module is also the **benchmark registry**: every ``bench_*``
module self-registers its producer with :func:`register_benchmark`
(name, zero-arg producer, expected artifact name), so tooling — in
particular ``repro perf baseline`` — enumerates the suite instead of
hard-coding module paths. :func:`load_benchmarks` imports every
``bench_*`` module (registration is an import side effect) and returns
the filled registry; because ``benchmarks/`` is a package, pytest and
the CLI import the same ``benchmarks.conftest`` module and therefore
share one registry object.
"""

import importlib
from dataclasses import dataclass
from pathlib import Path

import pytest


@dataclass(frozen=True)
class Benchmark:
    """One registered benchmark."""

    name: str
    #: Zero-arg callable that regenerates the artifact.
    producer: object
    #: The artifact the producer regenerates (table/figure name).
    artifact: str


#: name -> :class:`Benchmark`, filled by ``bench_*`` modules at import.
BENCHMARKS = {}


def register_benchmark(name, producer, artifact=None):
    """Register a benchmark producer; returns it (usable inline)."""
    BENCHMARKS[name] = Benchmark(name=name, producer=producer,
                                 artifact=artifact or name)
    return producer


def load_benchmarks() -> dict:
    """Import every ``bench_*`` module and return the filled registry."""
    for path in sorted(Path(__file__).parent.glob("bench_*.py")):
        importlib.import_module(f"benchmarks.{path.stem}")
    return dict(BENCHMARKS)


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a regenerator once under pytest-benchmark and return its value."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


@pytest.fixture
def regenerate_resilient(regenerate, tmp_path):
    """Like ``regenerate``, but through a journaled resilient sweep.

    The producer must accept ``sweep=`` (table5/table6, figure3-5). The
    fixture journals every cell, checks the completeness accounting,
    then resumes from the journal and asserts the replayed regeneration
    recomputes nothing and reproduces identical data — the durability
    contract every benchmarked sweep now ships with.
    """
    from repro.harness.sweep import Sweep

    def _run(fn, *args, **kwargs):
        journal = tmp_path / f"{fn.__name__}.jsonl"
        engine = Sweep(fn.__name__, journal=journal)
        data = regenerate(fn, *args, sweep=engine, **kwargs)
        report = engine.last.completeness()
        assert report["cells"] == report["executed"]
        assert not report["quarantined"]

        resumed = Sweep(fn.__name__, journal=journal, resume=True)
        replay = fn(*args, sweep=resumed, **kwargs)
        assert resumed.last.executed == 0
        assert resumed.last.replayed == report["cells"]
        assert replay == data
        return data

    return _run
