"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures
exactly once (``rounds=1``): the interesting output is the regenerated
artifact printed to stdout (run with ``-s`` to see it) and the asserted
paper-shape invariants, with pytest-benchmark recording how long the
regeneration takes.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a regenerator once under pytest-benchmark and return its value."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run
