"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables or figures
exactly once (``rounds=1``): the interesting output is the regenerated
artifact printed to stdout (run with ``-s`` to see it) and the asserted
paper-shape invariants, with pytest-benchmark recording how long the
regeneration takes.
"""

import pytest


@pytest.fixture
def regenerate(benchmark, capsys):
    """Run a regenerator once under pytest-benchmark and return its value."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _run


@pytest.fixture
def regenerate_resilient(regenerate, tmp_path):
    """Like ``regenerate``, but through a journaled resilient sweep.

    The producer must accept ``sweep=`` (table5/table6, figure3-5). The
    fixture journals every cell, checks the completeness accounting,
    then resumes from the journal and asserts the replayed regeneration
    recomputes nothing and reproduces identical data — the durability
    contract every benchmarked sweep now ships with.
    """
    from repro.harness.sweep import Sweep

    def _run(fn, *args, **kwargs):
        journal = tmp_path / f"{fn.__name__}.jsonl"
        engine = Sweep(fn.__name__, journal=journal)
        data = regenerate(fn, *args, sweep=engine, **kwargs)
        report = engine.last.completeness()
        assert report["cells"] == report["executed"]
        assert not report["quarantined"]

        resumed = Sweep(fn.__name__, journal=journal, resume=True)
        replay = fn(*args, sweep=resumed, **kwargs)
        assert resumed.last.executed == 0
        assert resumed.last.replayed == report["cells"]
        assert replay == data
        return data

    return _run
