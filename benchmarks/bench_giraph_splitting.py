"""Section 6.1.3: Giraph superstep splitting vs peak message memory.

"We perform a conceptually similar optimization at the Giraph code level
by breaking up each superstep (iteration) into 100 smaller supersteps
... This results in much smaller memory footprint (since only 1%
messages are created at any time), at the cost of finer grained
synchronization."
"""

from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_triangle_graph
from repro.frameworks.vertex import giraph
from benchmarks.conftest import register_benchmark


def sweep_splits(splits_list=(1, 10, 100)):
    graph = rmat_triangle_graph(scale=10, edge_factor=8, seed=99)
    rows = []
    for splits in splits_list:
        cluster = Cluster(paper_cluster(4), enforce_memory=False)
        result = giraph.triangle_count(graph, cluster,
                                       superstep_splits=splits)
        rows.append({
            "splits": splits,
            "buffer_bytes": cluster.memory(0).breakdown().get(
                "message-buffers", 0.0),
            "total_time_s": result.total_time_s,
        })
    return rows


def test_giraph_superstep_splitting(regenerate):
    rows = regenerate(sweep_splits)
    print()
    print("Giraph triangle counting: superstep splits vs buffer memory")
    for row in rows:
        print(f"  splits={row['splits']:>4}  "
              f"buffers/node={row['buffer_bytes']:>12.0f} B  "
              f"time={row['total_time_s']:8.1f} s")

    by_splits = {row["splits"]: row for row in rows}
    # 100 splits shrink the buffer ~100x ...
    assert by_splits[100]["buffer_bytes"] < \
        0.02 * by_splits[1]["buffer_bytes"]
    # ... at the cost of ~100 Hadoop superstep overheads.
    assert by_splits[100]["total_time_s"] > by_splits[1]["total_time_s"]


register_benchmark("giraph_splitting", sweep_splits, artifact="extension")
