"""Perf model: roofline band, gap attribution, what-if advisor.

Regenerates the three ``repro.perf`` artifacts once each and asserts
the paper-shape invariants the subsystem is built around: the native
kernels land inside the paper's "within 2-2.5x of the hardware bound"
band, Giraph's BFS gap factors multiply back to the measured gap
exactly, and the advisor's combined what-if is at least as good as any
single optimization (Figure 7's end state).
"""

from repro import perf
from repro.harness import report as harness_report  # noqa: F401  (parity import)
from benchmarks.conftest import register_benchmark


def perf_model():
    """Regenerate roofline table + Giraph BFS attribution + BFS advice."""
    return {
        "roofline": perf.roofline_table("native"),
        "attribution": perf.attribute_cell("bfs", "giraph", nodes=4).to_dict(),
        "advice": [a.to_dict() for a in perf.advise_cell("bfs", nodes=4)],
    }


def test_perf_model(regenerate):
    data = regenerate(perf_model)
    print()
    print(perf.render_roofline(data["roofline"],
                               title="Roofline: native vs hardware bounds"))

    # Table 4's argument, made quantitative: every native cell achieves
    # within the paper's 2-2.5x-of-bound band (ratio >= 1 by construction).
    for algorithm, per_nodes in data["roofline"].items():
        for nodes, cell in per_nodes.items():
            assert cell["status"] == "ok", (algorithm, nodes)
            assert 1.0 <= cell["ratio"] <= 2.5, (algorithm, nodes, cell)

    # The attribution is an exact telescoping decomposition: the product
    # of the factors IS the measured gap (acceptance asks within 10%).
    attribution = data["attribution"]
    product = 1.0
    for factor in attribution["factors"]:
        assert factor["factor"] >= 1.0 - 1e-9, factor
        product *= factor["factor"]
    assert abs(product / attribution["gap"] - 1.0) < 0.10
    assert attribution["gap"] > 100  # Giraph BFS: the paper's worst cell

    # Advisor: the all-options run dominates every single toggle, and
    # no simulated optimization is predicted to slow the baseline down.
    advice = {a["option"]: a["speedup"] for a in data["advice"]}
    assert advice["all"] >= max(v for k, v in advice.items() if k != "all")
    assert all(v >= 1.0 for v in advice.values()), advice


register_benchmark("perf_model", perf_model, artifact="perf_model")
