"""Figure 6: CPU utilization, network BW, memory footprint, bytes sent."""

from repro.harness import figure6, report
from benchmarks.conftest import register_benchmark


def test_figure6(regenerate):
    data = regenerate(figure6)
    print()
    print(report.render_figure6(data))

    for algorithm, panel in data.items():
        native = panel["native"]
        giraph = panel["giraph"]
        assert native is not None and giraph is not None

        # "Giraph has especially low CPU utilization across the board"
        # — capped near 4/24 ~ 16% by its worker count.
        assert giraph["cpu_utilization"] <= 17.5, algorithm
        for other in ("native", "combblas"):
            if panel[other]["peak_network_bw"] > 0:
                assert giraph["cpu_utilization"] <= \
                    max(panel[other]["cpu_utilization"], 17.5)

        # Peak network rate ordering: MPI stacks highest, Giraph lowest.
        if native["peak_network_bw"] > 0 and giraph["peak_network_bw"] > 0:
            assert native["peak_network_bw"] > giraph["peak_network_bw"]
            # Giraph under 10% of the network limit (Section 6.2).
            assert giraph["peak_network_bw"] < 10.0

        # Bytes sent are normalized to Giraph = 100; nobody exceeds
        # Giraph by much (its serialization overhead is the ceiling).
        assert abs(giraph["network_bytes_sent"] - 100.0) < 1e-6

    # Native peak network rate "over 5 GBps" -> >90 normalized, for the
    # network-exercising algorithms.
    assert data["pagerank"]["native"]["peak_network_bw"] > 90.0


register_benchmark("figure6", figure6, artifact="figure6")
