"""Figure 7: effect of optimizations on the native implementations."""

from repro.harness import figure7, report
from benchmarks.conftest import register_benchmark


def test_figure7(regenerate):
    data = regenerate(figure7)
    print()
    print(report.render_figure7(data))

    for algorithm, ladder in data.items():
        labels = [label for label, _ in ladder]
        speedups = [speedup for _, speedup in ladder]
        assert labels[0] == "baseline"
        assert speedups[0] == 1.0
        # Cumulative: each added optimization never slows things down
        # (within rounding).
        for before, after in zip(speedups, speedups[1:]):
            assert after >= before * 0.99, (algorithm, labels)
        # The full stack is worth a substantial factor (the paper's
        # Figure 7 tops out around 12-16x for PageRank and ~10x for BFS).
        assert speedups[-1] > 3.0, algorithm

    # Prefetching alone is worth >1.5x on PageRank (the gather is the
    # dominant random access).
    pagerank = dict(data["pagerank"])
    assert pagerank["+ s/w prefetching"] > 1.5

    # The BFS data-structure step (bit-vector) contributes on BFS.
    bfs = dict(data["bfs"])
    assert bfs["+ data structure opt."] >= bfs["+ overlap comp. and comm."]


register_benchmark("figure7", figure7, artifact="figure7")
