"""Section 3.2's convergence study: SGD vs GD iterations to a fixed RMSE.

"For the Netflix dataset, given a fixed convergence criterion, SGD
converges in about 40x fewer iterations than GD."
"""

from repro.harness import sgd_vs_gd
from benchmarks.conftest import register_benchmark


def test_sgd_vs_gd(regenerate):
    result = regenerate(sgd_vs_gd)
    print()
    print("SGD vs GD on the Netflix proxy "
          f"(target RMSE {result['target_rmse']:.4f}):")
    print(f"  SGD: {result['sgd']} iterations")
    print(f"  GD:  {result['gd']} iterations")
    print(f"  ratio: {result['ratio']:.1f}x fewer iterations for SGD")

    # The paper reports ~40x on the real Netflix data; our chunked-SGD
    # substitution must still show a decisive (>5x) gap.
    assert result["sgd"] < result["gd"]
    assert result["ratio"] > 5.0


register_benchmark("sgd_vs_gd", sgd_vs_gd, artifact="sgd_vs_gd")
