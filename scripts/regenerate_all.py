"""Regenerate every table and figure of the paper and print them.

This is the one-shot reproduction driver:

    python scripts/regenerate_all.py > results.txt

Runtime is a few minutes; the benchmark suite under ``benchmarks/``
regenerates the same artifacts piecewise with assertions.
"""

import time

from repro.harness import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    report,
    sgd_vs_gd,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


def timed(label, fn, renderer):
    start = time.time()
    data = fn()
    print(renderer(data))
    print(f"[{label} regenerated in {time.time() - start:.1f}s]\n")
    return data


def main():
    timed("table1", table1, lambda d: report.render_rows(
        d, ["algorithm", "graph_type", "vertex_property", "access_pattern",
            "message_bytes_per_edge", "vertex_active"],
        "Table 1: algorithm characteristics"))
    timed("table2", table2, lambda d: report.render_rows(
        d, ["framework", "programming_model", "multi_node", "language",
            "graph_partitioning", "communication_layer"],
        "Table 2: framework comparison"))
    timed("table3", table3, lambda d: report.render_rows(
        d, ["dataset", "paper_vertices", "paper_edges", "proxy_size",
            "proxy_edges"],
        "Table 3: datasets"))
    timed("table4", table4, report.render_table4)
    timed("table5", table5, lambda d: report.render_slowdown_table(
        d, "Table 5: single-node slowdowns vs native (geomean)"))
    timed("table6", table6, lambda d: report.render_slowdown_table(
        d, "Table 6: multi-node slowdowns vs native (geomean)"))
    timed("table7", table7, report.render_table7)
    timed("figure3", figure3, lambda d: report.render_runtime_panels(
        d, "Figure 3: single-node runtimes (seconds)"))
    timed("figure4", figure4, lambda d: report.render_scaling_curves(
        d, "Figure 4: weak scaling 1-64 nodes (seconds)"))
    timed("figure5", figure5, lambda d: report.render_runtime_panels(
        d, "Figure 5: large real-world proxies, multi-node"))
    timed("figure6", figure6, report.render_figure6)
    timed("figure7", figure7, report.render_figure7)

    start = time.time()
    convergence = sgd_vs_gd()
    print("SGD vs GD convergence (Section 3.2):")
    print(f"  SGD: {convergence['sgd']} iterations to RMSE "
          f"{convergence['target_rmse']:.4f}")
    print(f"  GD:  {convergence['gd']} iterations "
          f"({convergence['ratio']:.0f}x more; paper reports ~40x)")
    print(f"[sgd_vs_gd regenerated in {time.time() - start:.1f}s]")


if __name__ == "__main__":
    main()
