"""Calibration dashboard: measured slowdowns vs the paper's Tables 5/6.

Run after any cost-model change:  python scripts/calibrate.py
"""

import sys

from repro.harness.datasets import weak_scaling_dataset
from repro.harness import run_experiment

PAPER_SINGLE = {   # Table 5
    "pagerank": {"combblas": 1.9, "graphlab": 3.6, "socialite": 2.0,
                 "giraph": 39.0, "galois": 1.2},
    "bfs": {"combblas": 2.5, "graphlab": 9.3, "socialite": 7.3,
            "giraph": 567.8, "galois": 1.1},
    "collaborative_filtering": {"combblas": 3.5, "graphlab": 5.1,
                                "socialite": 5.8, "giraph": 54.4,
                                "galois": 1.1},
    "triangle_counting": {"combblas": 33.9, "graphlab": 3.2,
                          "socialite": 4.7, "giraph": 484.3, "galois": 2.5},
}
PAPER_MULTI = {   # Table 6
    "pagerank": {"combblas": 2.5, "graphlab": 12.1, "socialite": 7.9,
                 "giraph": 74.4},
    "bfs": {"combblas": 7.1, "graphlab": 29.5, "socialite": 18.9,
            "giraph": 494.3},
    "collaborative_filtering": {"combblas": 3.5, "graphlab": 7.1,
                                "socialite": 7.0, "giraph": 87.9},
    "triangle_counting": {"combblas": 13.1, "graphlab": 3.6,
                          "socialite": 1.5, "giraph": 54.4},
}


def params_for(algo, data=None):
    import numpy as np
    if algo == "pagerank":
        return {"iterations": 3}
    if algo == "collaborative_filtering":
        return {"iterations": 2, "hidden_dim": 32}
    if algo == "bfs" and data is not None:
        return {"source": int(np.argmax(data.out_degrees()))}
    return {}


def main():
    only = sys.argv[1] if len(sys.argv) > 1 else None
    for nodes, paper in ((1, PAPER_SINGLE), (4, PAPER_MULTI)):
        print(f"\n=== {nodes} node(s): measured (paper) ===")
        for algo, targets in paper.items():
            if only and only not in algo:
                continue
            data, f = weak_scaling_dataset(algo, nodes)
            params = params_for(algo, data)
            nat = run_experiment(algo, "native", data, nodes=nodes,
                                 scale_factor=f, **params)
            base = nat.runtime()
            line = f"{algo[:20]:22s} native={base:8.3f}s  "
            for fw, target in targets.items():
                r = run_experiment(algo, fw, data, nodes=nodes,
                                   scale_factor=f, enforce_memory=False,
                                   **params)
                if r.ok:
                    line += f"{fw[:4]}={r.runtime() / base:7.1f} ({target:g}) "
                else:
                    line += f"{fw[:4]}={r.status[:6]} ({target:g}) "
            print(line)


if __name__ == "__main__":
    main()
