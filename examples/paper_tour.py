"""A guided tour: every headline claim of the paper, checked live.

Walks the SIGMOD 2014 paper's main findings one by one, regenerating
each on small proxies and printing claim vs. measurement. A compressed
version of the full benchmark suite, sized to finish in ~2 minutes.

Run:  python examples/paper_tour.py
"""

import numpy as np

from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.frameworks.native import NativeOptions
from repro.harness import run_experiment, table7
from repro.harness.datasets import weak_scaling_dataset


def check(label, claim, measured, passed):
    status = "reproduced" if passed else "DIVERGES"
    print(f"  [{status:>10}] {label}")
    print(f"               paper: {claim}")
    print(f"               here : {measured}\n")


def main():
    print("=" * 72)
    print("Tour of 'Navigating the Maze of Graph Analytics Frameworks'")
    print("=" * 72 + "\n")

    # 1. The Ninja gap.
    print("1. The Ninja gap (abstract): 2-30x for most frameworks, up to")
    print("   560x for Giraph.\n")
    graph = rmat_graph(scale=12, edge_factor=16, seed=1)
    native = run_experiment("pagerank", "native", graph, nodes=1,
                            scale_factor=5000.0, iterations=3)
    gaps = {}
    for framework in ("combblas", "graphlab", "socialite", "giraph",
                      "galois"):
        run = run_experiment("pagerank", framework, graph, nodes=1,
                             scale_factor=5000.0, iterations=3)
        gaps[framework] = run.runtime() / native.runtime()
    measured = ", ".join(f"{k} {v:.1f}x" for k, v in gaps.items())
    check("single-node PageRank gaps", "2-30x; Giraph far beyond",
          measured,
          all(1 <= v < 40 for k, v in gaps.items() if k != "giraph")
          and gaps["giraph"] > 20)

    # 2. Galois nearly native.
    check("Galois close to native (Table 5: 1.1-1.2x for PageRank)",
          "1.2x", f"{gaps['galois']:.2f}x", gaps["galois"] < 1.6)

    # 3. CombBLAS triangle-counting OOM.
    from repro.harness.datasets import scale_factor_for

    tc_graph = rmat_triangle_graph(scale=13, edge_factor=18, seed=2)
    tc = run_experiment(
        "triangle_counting", "combblas", tc_graph, nodes=1,
        scale_factor=scale_factor_for("triangle_counting", 85_000_000,
                                      tc_graph.num_edges),
    )
    check("CombBLAS runs out of memory on real-world triangle counting",
          "OOM while computing the A^2 product",
          tc.status, tc.status == "out-of-memory")

    # 4. SociaLite's network fix (Table 7).
    t7 = table7()
    check("SociaLite multi-socket speedup (Table 7)",
          "PageRank 2.4x, TC 1.6x",
          f"PageRank {t7['pagerank']['speedup']:.1f}x, "
          f"TC {t7['triangle_counting']['speedup']:.1f}x",
          t7["pagerank"]["speedup"] > 1.6)

    # 5. Compression (Section 6.1.2).
    data, factor = weak_scaling_dataset("pagerank", 4)
    on = run_experiment("pagerank", "native", data, nodes=4,
                        scale_factor=factor, iterations=2)
    ratio = on.result.extras["compression_ratio"]
    check("PageRank message compression", "~2.2x byte reduction",
          f"{ratio:.1f}x on the real encoded id streams",
          1.5 < ratio < 3.5)

    # 6. Giraph's worker occupancy (Section 5.4).
    giraph = run_experiment("pagerank", "giraph", data, nodes=4,
                            scale_factor=factor, iterations=2)
    util = giraph.metrics().cpu_utilization
    check("Giraph CPU utilization capped by 4/24 workers", "~16%",
          f"{100 * util:.0f}%", util <= 0.17)

    # 7. The bit-vector data structure (Section 6.1.2).
    fast = run_experiment("triangle_counting", "native", tc_graph, nodes=1,
                          scale_factor=1e4, options=NativeOptions())
    slow = run_experiment("triangle_counting", "native", tc_graph, nodes=1,
                          scale_factor=1e4,
                          options=NativeOptions(bitvector=False))
    speedup = slow.runtime() / fast.runtime()
    check("bit-vector neighbor lookups for triangle counting", "~2.2x",
          f"{speedup:.1f}x", 1.3 < speedup < 4.0)

    print("Tour complete. The full regeneration lives in benchmarks/ "
          "(pytest benchmarks/ --benchmark-only).")


if __name__ == "__main__":
    main()
