"""Write your own vertex program: connected components in 20 lines.

The package's vertex engine is a real Pregel interpreter, not just a
benchmark fixture. This example implements label-propagation connected
components as a :class:`VertexProgram` — the same programming model as
the paper's Algorithms 1 and 2 — runs it to quiescence, and checks it
against a union-find reference.

Run:  python examples/custom_vertex_program.py
"""

import numpy as np

from repro.datagen import rmat_graph
from repro.frameworks.vertex import VertexProgram, run_vertex_program


class ConnectedComponents(VertexProgram):
    """Each vertex adopts the smallest id it has heard of."""

    def initial_value(self, vertex: int) -> int:
        return vertex

    def compute(self, ctx, messages) -> None:
        smallest = min(messages) if messages else ctx.value
        if ctx.superstep == 0 or smallest < ctx.value:
            ctx.value = min(ctx.value, smallest)
            ctx.send_to_all_neighbors(ctx.value)
        ctx.vote_to_halt()


def components_reference(graph) -> np.ndarray:
    """Union-find over the edges (the oracle)."""
    parent = np.arange(graph.num_vertices)

    def find(v):
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for u, v in zip(graph.sources(), graph.targets):
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[max(ru, rv)] = min(ru, rv)
    # Normalize every vertex to its root, then to the smallest member.
    roots = np.array([find(v) for v in range(graph.num_vertices)])
    smallest = {}
    for vertex, root in enumerate(roots):
        smallest.setdefault(root, vertex)
    return np.array([smallest[r] for r in roots])


def main():
    graph = rmat_graph(scale=8, edge_factor=4, seed=11, directed=False)
    print(f"Graph: {graph.num_vertices} vertices, "
          f"{graph.num_edges} edges (undirected)\n")

    labels, supersteps = run_vertex_program(ConnectedComponents(), graph,
                                            max_supersteps=100)
    labels = np.asarray(labels)
    expected = components_reference(graph)
    assert np.array_equal(labels, expected), "vertex program disagrees!"

    components, sizes = np.unique(labels, return_counts=True)
    order = np.argsort(sizes)[::-1]
    print(f"Converged in {supersteps} supersteps.")
    print(f"{components.size} connected components; largest five:")
    for idx in order[:5]:
        print(f"  component rooted at v{components[idx]}: "
              f"{sizes[idx]} vertices")
    print("\nVertex program output verified against union-find.")


if __name__ == "__main__":
    main()
