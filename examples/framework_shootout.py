"""Framework shootout: a miniature of the paper's Table 5 on your data.

Runs all four workloads through all six frameworks on a single simulated
node and prints the slowdown-vs-native matrix — the "maze" an end-user
navigates when picking a framework.

Run:  python examples/framework_shootout.py [scale]
"""

import sys

import numpy as np

from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.harness import run_experiment

FRAMEWORKS = ("native", "combblas", "graphlab", "socialite", "giraph",
              "galois")


def main(scale: int = 12):
    datasets = {
        "pagerank": rmat_graph(scale, edge_factor=16, seed=1),
        "bfs": rmat_graph(scale, edge_factor=16, seed=1, directed=False),
        "triangle_counting": rmat_triangle_graph(scale, edge_factor=12,
                                                 seed=2),
        "collaborative_filtering": netflix_like_ratings(scale,
                                                        num_items=256,
                                                        seed=3),
    }
    params = {
        "pagerank": {"iterations": 5},
        "bfs": {},
        "triangle_counting": {},
        "collaborative_filtering": {"iterations": 2, "hidden_dim": 32},
    }

    header = "algorithm".ljust(26) + "".join(f.rjust(11) for f in FRAMEWORKS)
    print(header)
    print("-" * len(header))
    for algorithm, data in datasets.items():
        if algorithm == "bfs":
            params["bfs"]["source"] = int(np.argmax(data.out_degrees()))
        baseline = None
        row = algorithm.ljust(26)
        for framework in FRAMEWORKS:
            result = run_experiment(algorithm, framework, data, nodes=1,
                                    scale_factor=2000.0,
                                    **params[algorithm])
            if not result.ok:
                row += result.status[:10].rjust(11)
                continue
            if baseline is None:
                baseline = result.runtime()
                row += f"{baseline:.3g}s".rjust(11)
            else:
                row += f"{result.runtime() / baseline:.1f}x".rjust(11)
        print(row)
    print("\n(native column is absolute simulated seconds; other columns "
          "are slowdowns vs native)")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 12)
