"""Weak-scaling study: Figure 4 for one algorithm, in a minute.

Sweeps 1-64 simulated nodes at constant edges per node and prints the
per-iteration runtime curves — flat lines mean perfect weak scaling.
Shows where each framework's bottleneck (network layer, superstep
overhead, CPU occupancy) bends its curve.

Run:  python examples/weak_scaling.py [pagerank|bfs|triangle_counting]
"""

import sys

from repro.harness import report
from repro.harness.figures import figure4


def main(algorithm: str = "pagerank"):
    frameworks = ("native", "combblas", "graphlab", "socialite", "giraph")
    data = figure4(frameworks=frameworks, algorithms=(algorithm,),
                   node_counts=(1, 2, 4, 8, 16, 32, 64))
    print(report.render_scaling_curves(
        data, f"Weak scaling, {algorithm} "
              "(paper Figure 4; horizontal = perfect)"
    ))

    curves = data[algorithm]
    native = curves["native"]
    growth = native[64] / native[1]
    print(f"\nNative grows {growth:.1f}x from 1 to 64 nodes "
          "(network costs slowly take over).")
    giraph = curves["giraph"]
    if isinstance(giraph[64], float) and isinstance(native[64], float):
        print(f"Giraph at 64 nodes is {giraph[64] / native[64]:.0f}x "
              "slower than native at the same scale.")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "pagerank")
