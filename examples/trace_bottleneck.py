"""Find the Figure 6 Giraph-vs-native gap inside an exported trace.

The paper reports Giraph running orders of magnitude slower than native
code at near-zero CPU utilization (Figure 6) — the time goes to
framework overhead, not to the algorithm. An aggregate number says
*that*; a flight-recorder trace says *where*. This example runs the same
PageRank through native and Giraph with tracing on, exports a Chrome
trace, and then answers from the recorded spans alone: how much of each
superstep was compute, how much was communication, and how much was
per-superstep overhead that native code simply does not pay.

Run:  python examples/trace_bottleneck.py
"""

from repro.datagen import rmat_graph
from repro.harness import run_experiment
from repro.observability import Tracer, render_summary_tree, \
    write_chrome_trace


def superstep_decomposition(tracer):
    """(compute_s, comm_s, overhead_s) summed over the trace's supersteps."""
    compute = comm = overhead = 0.0
    for span in tracer.spans_named("superstep"):
        compute += span.attrs["compute_s"]
        comm += span.attrs["comm_s"]
        overhead += span.attrs["overhead_s"]
    return compute, comm, overhead


def main():
    graph = rmat_graph(scale=12, edge_factor=16, seed=6)
    print(f"PageRank on {graph.num_vertices:,} vertices / "
          f"{graph.num_edges:,} edges, 4 simulated nodes, "
          f"paper-scale factor 2000\n")

    runs = {}
    for framework in ("native", "giraph"):
        runs[framework] = run_experiment(
            "pagerank", framework, graph, nodes=4, scale_factor=2000.0,
            iterations=3, trace=Tracer())

    for framework, run in runs.items():
        tracer = run.trace
        print(f"=== {framework} ({run.metrics().total_time_s:.3f}s "
              f"simulated) ===")
        print(render_summary_tree(tracer, max_depth=4))
        path = f"trace_{framework}.json"
        write_chrome_trace(tracer, path)
        print(f"-> wrote {path} (open in chrome://tracing)\n")

    # The gap, answered from the spans alone -----------------------------
    decomp = {name: superstep_decomposition(run.trace)
              for name, run in runs.items()}
    print(f"{'phase':<12} {'native':>12} {'giraph':>12} {'ratio':>9}")
    for i, phase in enumerate(("compute", "comm", "overhead")):
        native_s, giraph_s = decomp["native"][i], decomp["giraph"][i]
        ratio = f"{giraph_s / native_s:.1f}x" if native_s > 0 else "n/a"
        print(f"{phase:<12} {native_s:>11.4f}s {giraph_s:>11.4f}s "
              f"{ratio:>9}")

    gap = runs["giraph"].runtime() / runs["native"].runtime()
    _, _, giraph_overhead = decomp["giraph"]
    share = giraph_overhead / runs["giraph"].metrics().total_time_s
    print(f"\nGiraph is {gap:.0f}x slower per iteration; "
          f"{100 * share:.0f}% of its wall clock is fixed per-superstep "
          f"overhead\n(JVM/Hadoop coordination the native kernel does not "
          f"pay) — the Figure 6 gap,\nread directly off the trace.")


if __name__ == "__main__":
    main()
