"""Quickstart: run one algorithm on one framework and read the results.

Generates a Graph500 RMAT graph, runs PageRank through the native
implementation and through GraphLab's vertex-programming engine on a
simulated 4-node cluster, verifies the two agree, and prints the
runtime/metrics the study is built on.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.datagen import rmat_graph
from repro.harness import run_experiment


def main():
    print("Generating a Graph500 RMAT graph (scale 14, edge factor 16)...")
    graph = rmat_graph(scale=14, edge_factor=16, seed=42)
    print(f"  {graph.num_vertices:,} vertices, {graph.num_edges:,} edges\n")

    # scale_factor extrapolates the counted work to a paper-sized run
    # (here: pretend the graph were 500x larger).
    results = {}
    for framework in ("native", "graphlab"):
        result = run_experiment("pagerank", framework, graph, nodes=4,
                                scale_factor=500.0, iterations=10)
        results[framework] = result
        metrics = result.metrics()
        print(f"{framework}:")
        print(f"  time per iteration : {result.runtime():.4f} s (simulated)")
        print(f"  CPU utilization    : {100 * metrics.cpu_utilization:.0f}%")
        print(f"  bytes sent per node: "
              f"{metrics.bytes_sent_per_node / 1e6:.1f} MB")
        print(f"  peak network rate  : "
              f"{metrics.peak_network_bandwidth / 1e9:.2f} GB/s")
        print(f"  memory footprint   : "
              f"{metrics.memory_footprint_bytes / 2**30:.2f} GiB/node\n")

    native_ranks = results["native"].result.values
    graphlab_ranks = results["graphlab"].result.values
    np.testing.assert_allclose(native_ranks, graphlab_ranks, rtol=1e-10)
    print("Both engines computed identical PageRank vectors.")
    top = np.argsort(native_ranks)[-5:][::-1]
    print("Top-5 vertices by rank:", ", ".join(
        f"v{v} ({native_ranks[v]:.1f})" for v in top
    ))
    slowdown = results["graphlab"].runtime() / results["native"].runtime()
    print(f"\nGraphLab is {slowdown:.1f}x slower than native here "
          f"(the paper's Table 5 reports 3.6x geomean).")


if __name__ == "__main__":
    main()
