"""What fault tolerance costs: Giraph vs native under a node crash.

The frameworks of the study sit at two ends of a fault-tolerance trade.
Giraph inherits Hadoop's superstep machinery — periodic checkpoints to
disk, restore + replay on node loss — and survives a crash at the price
of checkpoint writes on *every* run and replay time on the bad ones.
The native baselines (and GraphLab, Galois) spend nothing on the happy
path and simply die. This example makes the trade measurable: the same
BFS, the same seeded fault schedule, one framework per end.

Run:  python examples/chaos_giraph_vs_native.py
"""

import numpy as np

from repro.datagen import rmat_graph
from repro.errors import NodeFailure
from repro.harness import run_experiment

SCHEDULE = "crash(node=2, superstep=3); drop(p=0.02)"


def main():
    graph = rmat_graph(scale=10, edge_factor=16, seed=4, directed=False)
    print(f"BFS on {graph.num_vertices:,} vertices / "
          f"{graph.num_edges:,} edges, 4 simulated nodes")
    print(f"fault schedule: {SCHEDULE}\n")

    # -- Giraph: checkpoint every 2 supersteps, recover, keep going ------
    clean = run_experiment("bfs", "giraph", graph, nodes=4)
    chaos = run_experiment("bfs", "giraph", graph, nodes=4, faults=SCHEDULE)
    stats = chaos.recovery

    print("=== giraph (checkpoint/recover) ===")
    print(f"fault-free : {clean.runtime():.4f} s")
    print(f"under fault: {chaos.runtime():.4f} s "
          f"({chaos.runtime() / clean.runtime():.2f}x)")
    print(f"  checkpoints written : {stats.checkpoints_written} "
          f"({stats.checkpoint_time_s:.4f} s)")
    print(f"  crash recovery      : {stats.recovery_time_s:.4f} s "
          f"(restore {stats.restore_time_s:.4f} + "
          f"replay {stats.replay_time_s:.4f} + detection)")
    print(f"  dropped messages    : {stats.messages_dropped} "
          f"(retry stalls {stats.retry_time_s:.4f} s)")
    same = np.array_equal(clean.result.values, chaos.result.values)
    print(f"  BFS parents correct : {same}  <- recovery replays, so the "
          "answer is exact")

    print("\nfault timeline:")
    for event in stats.events:
        attrs = ", ".join(f"{key}={value}" for key, value in event.items()
                          if key not in ("kind", "superstep"))
        print(f"  step {event['superstep']:>3}  {event['kind']:<14} {attrs}")

    # -- native: no checkpoints, no recovery, no survivors ---------------
    print("\n=== native (fail-fast) ===")
    try:
        run_experiment("bfs", "native", graph, nodes=4, faults=SCHEDULE)
    except NodeFailure as failure:
        print(f"raised NodeFailure: node {failure.node} at superstep "
              f"{failure.superstep}")
        print("native code pays zero fault-tolerance overhead on the happy "
              "path\nand loses the whole run on the bad one — the other end "
              "of the trade.")


if __name__ == "__main__":
    main()
