"""Explain a framework's runtime the way Section 5.4 does.

Runs BFS through three very different frameworks, renders each run's
superstep timeline, and prints the bottleneck decomposition plus the
paper-style optimization advice.

Run:  python examples/bottleneck_analysis.py
"""

import numpy as np

from repro.cluster.timeline import analyze, render_timeline
from repro.datagen import rmat_graph
from repro.harness import run_experiment


def main():
    graph = rmat_graph(scale=12, edge_factor=16, seed=4, directed=False)
    source = int(np.argmax(graph.out_degrees()))
    print(f"BFS on {graph.num_vertices:,} vertices / "
          f"{graph.num_edges:,} edges, 4 simulated nodes\n")

    for framework in ("native", "graphlab", "giraph"):
        run = run_experiment("bfs", framework, graph, nodes=4,
                             scale_factor=2000.0, source=source)
        metrics = run.metrics()
        report = analyze(metrics)
        print(f"=== {framework} "
              f"(total {metrics.total_time_s:.3f}s simulated) ===")
        print(render_timeline(metrics, width=40, max_rows=6))
        print()

    print("The three decompositions are the paper's Section 5/6 story in "
          "miniature:\n  native streams memory, GraphLab waits on its "
          "socket layer, and Giraph\n  burns fixed Hadoop superstep "
          "overhead on every BFS level.")


if __name__ == "__main__":
    main()
