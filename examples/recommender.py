"""Build a movie recommender with the collaborative-filtering stack.

Generates a Netflix-like power-law ratings matrix (the paper's Section
4.1.2 generator), factorizes it with the native SGD (Gemulla diagonal
blocks) on a simulated 4-node cluster, demonstrates the paper's
SGD-vs-GD convergence gap, and prints top recommendations for a user.

Run:  python examples/recommender.py
"""

import numpy as np

from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings
from repro.frameworks.native import collaborative_filtering


def main():
    print("Generating power-law ratings (RMAT -> fold -> degree filter)...")
    ratings = netflix_like_ratings(scale=12, num_items=256, seed=7)
    print(f"  {ratings.num_users:,} users x {ratings.num_items:,} items, "
          f"{ratings.num_ratings:,} ratings\n")

    print("Training with SGD (native, 4 simulated nodes)...")
    sgd = collaborative_filtering(
        ratings, Cluster(paper_cluster(4), enforce_memory=False),
        hidden_dim=32, iterations=15, method="sgd", gamma0=0.02,
        step_decay=0.97, seed=0,
    )
    print("Training with GD (what most frameworks are limited to)...")
    gd = collaborative_filtering(
        ratings, Cluster(paper_cluster(4), enforce_memory=False),
        hidden_dim=32, iterations=15, method="gd", gamma0=0.002,
        step_decay=0.97, seed=0,
    )

    print("\nTraining RMSE per iteration (SGD vs GD):")
    for i, (s, g) in enumerate(zip(sgd.extras["rmse_curve"],
                                   gd.extras["rmse_curve"])):
        bar = "#" * int(s * 20)
        print(f"  iter {i + 1:>2}: SGD {s:.4f}  GD {g:.4f}  {bar}")
    print("\nSGD reaches in a couple of iterations what GD needs dozens "
          "for — the paper's ~40x convergence gap (Section 3.2).")

    p_factors, q_factors = sgd.values
    user = int(np.argmax(ratings.user_degrees()))
    scores = q_factors @ p_factors[user]
    seen = set(ratings.items[ratings.users == user].tolist())
    recommendations = [int(i) for i in np.argsort(scores)[::-1]
                       if int(i) not in seen][:5]
    print(f"\nHeaviest user (#{user}, {ratings.user_degrees()[user]} "
          f"ratings) — top-5 unseen items: {recommendations}")
    print(f"\nSimulated training time: {sgd.total_time_s:.3f}s "
          f"({sgd.metrics.bytes_sent_per_node / 1e6:.1f} MB/node of "
          "factor rotations on the wire)")


if __name__ == "__main__":
    main()
