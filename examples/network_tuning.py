"""Reproduce the SociaLite network-tuning case study (Section 6.1.3).

The paper took the published SociaLite (one TCP socket per worker pair,
~0.5 GB/s) and rebuilt its communication layer with multiple sockets
(~2 GB/s), speeding network-bound algorithms up 1.6-2.4x. This example
replays that engineering exercise on the simulator and shows how far the
result still sits from the MPI-class fabric native code uses.

Run:  python examples/network_tuning.py
"""

from repro.cluster import Cluster, paper_cluster
from repro.frameworks.datalog import socialite
from repro.harness import run_experiment
from repro.harness.datasets import weak_scaling_dataset


def main():
    nodes = 4
    print(f"PageRank on {nodes} simulated nodes "
          "(weak-scaling dataset, 128M-edge/node equivalent):\n")

    data, factor = weak_scaling_dataset("pagerank", nodes)

    published = socialite.pagerank(
        data, Cluster(paper_cluster(nodes), scale_factor=factor),
        iterations=3, optimized=False,
    )
    optimized = socialite.pagerank(
        data, Cluster(paper_cluster(nodes), scale_factor=factor),
        iterations=3, optimized=True,
    )
    native = run_experiment("pagerank", "native", data, nodes=nodes,
                            scale_factor=factor, iterations=3)

    rows = [
        ("SociaLite (published, 1 socket)", published),
        ("SociaLite (multi-socket fix)", optimized),
    ]
    for label, result in rows:
        metrics = result.metrics
        print(f"{label}:")
        print(f"  time/iteration    : {result.time_per_iteration_s:.3f} s")
        print(f"  peak network rate : "
              f"{metrics.peak_network_bandwidth / 1e9:.2f} GB/s")
        print(f"  network share     : {100 * metrics.network_fraction:.0f}% "
              "of the critical path\n")

    speedup = (published.time_per_iteration_s
               / optimized.time_per_iteration_s)
    gap = optimized.time_per_iteration_s / native.runtime()
    print(f"Multi-socket speedup: {speedup:.1f}x "
          "(paper Table 7: 2.4x for PageRank)")
    print(f"Remaining gap to native-on-MPI: {gap:.1f}x — the paper's "
          "roadmap says fixing the last 3-4x of network bandwidth would "
          "bring SociaLite within 5x of native (Section 6.2).")


if __name__ == "__main__":
    main()
