"""The resilient sweep engine: isolation, deadlines, retry/quarantine,
durable journals and exact resume.

The synthetic-executor tests pin the engine's failure-handling contract
cheaply; the table5-subset tests assert the headline durability
guarantee end to end: a sweep interrupted at an arbitrary cell and
resumed from its journal produces byte-identical artifact data with
zero completed cells recomputed.
"""

import dataclasses
import json

import pytest

from repro.errors import (
    CapacityError,
    DeadlineExceeded,
    ExpressibilityError,
    NodeFailure,
    ReproError,
)
from repro.harness import RunResult, Sweep, run_experiment, save_artifact
from repro.harness.report import render_sweep_completeness
from repro.harness.sweep import CellOutcome, SweepJournal, cell_id
from repro.harness.tables import table5
from repro.observability import Tracer


def keys(n):
    return [{"cell": i} for i in range(n)]


def ok_executor(key, budget_s=None):
    return {"x": key["cell"] * 10}


class TestEngine:
    def test_happy_path_records_everything(self):
        result = Sweep("s").run(keys(4), ok_executor)
        assert [r.value["x"] for r in result] == [0, 10, 20, 30]
        assert all(r.ok and r.attempts == 1 for r in result)
        report = result.completeness()
        assert report["cells"] == 4 and report["coverage"] == 1.0
        assert report["executed"] == 4 and report["replayed"] == 0

    @pytest.mark.parametrize("error,status", [
        (CapacityError(0, 10, 5), "out-of-memory"),
        (ExpressibilityError("no SGD"), "unsupported"),
        (DeadlineExceeded(1.0, 2.0), "timeout"),
        (NodeFailure(1, 3), "failed"),
    ])
    def test_typed_failures_become_cell_records(self, error, status):
        def execute(key, budget_s=None):
            if key["cell"] == 1:
                raise error
            return {"x": 1}

        result = Sweep("s").run(keys(3), execute)
        record = result.get(cell=1)
        assert record.status == status
        assert not record.quarantined          # typed != transient
        assert record.attempts == 1            # deterministic: no retry
        assert str(error) in record.failure
        # Isolation: the failure never escapes, neighbors complete.
        assert result.get(cell=0).ok and result.get(cell=2).ok
        assert result.completeness()["statuses"][status] == 1

    def test_transient_failure_retried_with_backoff(self):
        calls, slept = [], []

        def flaky(key, budget_s=None):
            calls.append(key["cell"])
            if key["cell"] == 1 and len(calls) < 3:
                raise RuntimeError("transient glitch")
            return {"x": 1}

        engine = Sweep("s", max_retries=3, backoff_base_s=0.5,
                       backoff_cap_s=0.6, sleep=slept.append)
        result = engine.run([{"cell": 1}], flaky)
        record = result.get(cell=1)
        assert record.ok and record.attempts == 3
        assert record.backoff_s == [0.5, 0.6]   # exponential, capped
        assert slept == [0.5, 0.6]

    def test_quarantine_after_max_retries_isolates_the_cell(self):
        tracer = Tracer()

        def execute(key, budget_s=None):
            if key["cell"] == 1:
                raise ValueError("always broken")
            return {"x": key["cell"]}

        result = Sweep("s", max_retries=2, tracer=tracer).run(keys(3),
                                                              execute)
        record = result.get(cell=1)
        assert record.status == "failed" and record.quarantined
        assert record.attempts == 3             # 1 try + 2 retries
        assert "ValueError: always broken" in record.failure
        # Every other cell still completed.
        assert result.get(cell=0).ok and result.get(cell=2).ok
        report = result.completeness()
        assert report["quarantined"] == [{"cell": 1}]
        assert report["retries"] == 2
        # The flight recorder explains the DNF.
        assert len(tracer.spans_named("cell-retry")) == 2
        assert len(tracer.spans_named("cell-quarantined")) == 1
        rendered = render_sweep_completeness(report)
        assert "quarantined" in rendered and "failed" in rendered

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ReproError, match="duplicate"):
            Sweep("s").run([{"cell": 1}, {"cell": 1}], ok_executor)

    def test_cell_outcome_passthrough(self):
        def execute(key, budget_s=None):
            return CellOutcome("timeout", failure="over budget")

        record = Sweep("s").run([{"cell": 0}], execute).get(cell=0)
        assert record.status == "timeout" and record.failure == "over budget"


class TestJournal:
    def test_existing_journal_requires_resume(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        Sweep("s", journal=journal).run(keys(2), ok_executor)
        with pytest.raises(ReproError, match="resume"):
            Sweep("s", journal=journal).run(keys(2), ok_executor)

    def test_journal_name_mismatch_rejected(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        Sweep("table5", journal=journal).run(keys(1), ok_executor)
        with pytest.raises(ReproError, match="table5"):
            Sweep("table6", journal=journal, resume=True).run(keys(1),
                                                              ok_executor)

    def test_corrupt_mid_journal_rejected(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        Sweep("s", journal=journal).run(keys(3), ok_executor)
        lines = journal.read_text().splitlines()
        lines[2] = "{garbage"
        journal.write_text("\n".join(lines) + "\n")
        with pytest.raises(ReproError, match="corrupt"):
            SweepJournal(journal).load("s")

    def test_torn_final_line_dropped(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        Sweep("s", journal=journal).run(keys(3), ok_executor)
        text = journal.read_text()
        # Kill mid-append: the last record is half-written.
        journal.write_text(text[:text.rindex('{"attempts"') + 17])
        records = SweepJournal(journal).load("s")
        assert set(records) == {cell_id({"cell": 0}), cell_id({"cell": 1})}

    def test_torn_record_mid_burst_repaired_on_resume(self, tmp_path):
        """A crash mid-burst tears only the final record of the burst.

        The parallel executor drains merged records in a burst of
        O_APPEND writes; killing it mid-append leaves intact records
        plus half of the one being written. Resume must keep every
        intact record, drop the torn one, and rebuild the journal
        byte-identically.
        """
        journal = tmp_path / "s.jsonl"
        Sweep("s", jobs=4, journal=journal).run(keys(8), ok_executor)
        original = journal.read_bytes()
        lines = journal.read_text().splitlines()
        # 5 intact records survive the burst; the 6th is half-written.
        journal.write_text("\n".join(lines[:6]) + "\n" + lines[6][:11])

        loaded = SweepJournal(journal).load("s")
        assert set(loaded) == {cell_id({"cell": i}) for i in range(5)}

        resumed = Sweep("s", jobs=4, journal=journal, resume=True).run(
            keys(8), ok_executor)
        assert resumed.replayed == 5 and resumed.executed == 3
        assert journal.read_bytes() == original

    def test_resume_replays_and_never_recomputes(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        direct = Sweep("s", journal=journal).run(keys(6), ok_executor)

        # Interrupt after 3 cells: truncate the journal mid-write.
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n" + lines[4][:9])

        executed = []

        def counting(key, budget_s=None):
            executed.append(key["cell"])
            return ok_executor(key)

        resumed = Sweep("s", journal=journal, resume=True)
        result = resumed.run(keys(6), counting)
        assert executed == [3, 4, 5]            # cells 0-2 replayed
        assert result.replayed == 3 and result.executed == 3
        assert [r.value for r in result] == [r.value for r in direct]
        assert all(result.get(cell=i).replayed for i in range(3))

        # A second resume replays everything.
        again = Sweep("s", journal=journal, resume=True).run(keys(6),
                                                             counting)
        assert executed == [3, 4, 5] and again.replayed == 6

    def test_stale_journal_cells_ignored(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        Sweep("s", journal=journal).run(keys(4), ok_executor)
        # Narrow the frontier between runs: extra journal cells are fine.
        result = Sweep("s", journal=journal, resume=True).run(
            keys(2), ok_executor)
        assert result.replayed == 2 and result.executed == 0


class TestDeadline:
    def test_run_experiment_deadline_yields_timeout_and_span(self):
        from repro.datagen import dataset

        tracer = Tracer()
        run = run_experiment("pagerank", "native", dataset("rmat_mini"),
                             deadline_s=1e-9, trace=tracer)
        assert run.status == "timeout"
        assert "deadline exceeded" in run.failure
        assert tracer.spans_named("deadline-exceeded")

    def test_deadline_is_a_cell_record_not_an_escape(self):
        """Slow cells DNF as 'timeout'; fast cells still complete."""
        from repro.datagen import dataset

        data = dataset("rmat_mini")
        native_s = run_experiment("pagerank", "native", data) \
            .metrics().total_time_s

        def execute(key, budget_s=None):
            from repro.harness.sweep import outcome_of

            return outcome_of(run_experiment(
                "pagerank", key["framework"], data, deadline_s=budget_s))

        tracer = Tracer()
        engine = Sweep("deadlines", deadline_s=3 * native_s, tracer=tracer)
        result = engine.run([{"framework": "native"},
                             {"framework": "giraph"}], execute)
        assert result.get(framework="native").ok
        giraph = result.get(framework="giraph")   # >20x native: over budget
        assert giraph.status == "timeout"
        report = result.completeness()
        assert report["statuses"]["timeout"] == 1
        assert report["dnf"][0]["key"] == {"framework": "giraph"}
        assert tracer.spans_named("cell-deadline")
        assert "timeout" in render_sweep_completeness(report)


class TestTable5EndToEnd:
    SUBSET = dict(algorithms=("pagerank",), frameworks=("galois",))

    def test_interrupted_sweep_resumes_byte_identical(self, tmp_path,
                                                      monkeypatch):
        journal = tmp_path / "table5.jsonl"
        direct = table5(sweep=Sweep("table5", journal=journal),
                        **self.SUBSET)
        baseline_bytes = json.dumps(direct, sort_keys=True)

        # Interrupt at an arbitrary cell: keep the header + 3 records
        # and a torn fourth — the on-disk state of a kill mid-append.
        lines = journal.read_text().splitlines()
        assert len(lines) == 9                  # header + 8 cells
        journal.write_text("\n".join(lines[:4]) + "\n" + lines[4][:23])

        import repro.harness.tables as tables_module

        real = tables_module.run
        counter = []
        monkeypatch.setattr(tables_module, "run",
                            lambda *a, **k: counter.append(a) or
                            real(*a, **k))

        resumed_engine = Sweep("table5", journal=journal, resume=True)
        resumed = table5(sweep=resumed_engine, **self.SUBSET)

        # Byte-identical artifact data, zero completed cells recomputed.
        assert json.dumps(resumed, sort_keys=True) == baseline_bytes
        assert len(counter) == 5                # 8 cells - 3 intact
        assert resumed_engine.last.replayed == 3
        assert resumed_engine.last.executed == 5

    def test_sweep_and_direct_regeneration_agree(self):
        assert table5(**self.SUBSET) == \
            table5(sweep=Sweep("table5"), **self.SUBSET)


class TestSatellites:
    def test_save_artifact_maps_infinities_to_null(self, tmp_path):
        path = save_artifact(tmp_path / "a.json", "t",
                             {"nan": float("nan"), "inf": float("inf"),
                              "ninf": float("-inf"), "x": 1.5})
        data = json.loads(path.read_text())["data"]
        assert data == {"nan": None, "inf": None, "ninf": None, "x": 1.5}

    def test_save_artifact_is_atomic(self, tmp_path):
        path = tmp_path / "a.json"
        save_artifact(path, "t", {"x": 1})
        before = path.read_text()
        with pytest.raises(TypeError):
            save_artifact(path, "t", {"bad": object()})
        # The failed save neither corrupted the artifact nor littered.
        assert path.read_text() == before
        assert list(tmp_path.iterdir()) == [path]

    def test_runresult_declares_trace_and_recovery_fields(self):
        names = [f.name for f in dataclasses.fields(RunResult)]
        assert "trace" in names and "recovery" in names
        result = RunResult("pagerank", "native", 1, "failed",
                           failure="boom")
        assert result.trace is None and result.recovery is None
        assert result.to_dict()["recovery"] is None

    def test_cli_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["run", "pagerank", "native",
                     "--deadline", "1e-9"]) == 6
        journal = str(tmp_path / "t5.jsonl")
        args = ["sweep", "table5", "--algorithms", "pagerank",
                "--frameworks", "galois", "--journal", journal]
        assert main(args) == 0
        assert main(args + ["--resume"]) == 0
        out = capsys.readouterr().out
        assert "replayed from journal" in out

    def test_cli_refuses_unresumed_existing_journal(self, tmp_path):
        from repro.cli import main

        journal = str(tmp_path / "t5.jsonl")
        args = ["sweep", "table5", "--algorithms", "pagerank",
                "--frameworks", "galois", "--journal", journal]
        assert main(args) == 0
        assert main(args) == 1                  # no --resume: refuse

    def test_cli_help_documents_exit_codes(self):
        from repro.cli import build_parser

        text = build_parser().format_help()
        assert "exit codes" in text
        assert "deadline exceeded" in text or "timeout" in text
