"""Differential tests for the kernel backends and the kernel registry.

The vectorized numpy kernels and the interpreted pure-Python oracle
must agree: bit-for-bit on integer-exact workloads (PageRank's bincount
accumulation order is replicated, BFS frontiers are integer sets,
triangle counts are integers), to ~1e-12 on CF (per-rating dot products
round differently at the last ulp than ``einsum``), and byte-for-byte
on every simulated metric (counted work is analytic, so backend choice
must never move a simulated number).
"""

import dataclasses

import numpy as np
import pytest

from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.errors import KernelError
from repro.harness import run_experiment
from repro.harness.datasets import weak_scaling_dataset
from repro.kernels import (
    BACKENDS,
    INTERPRETED,
    VECTORIZED,
    active_backend,
    kernel,
    registry,
    set_backend,
    use_backend,
)
from repro.kernels.spmv import semiring_spmv


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=8, seed=7)


@pytest.fixture(scope="module")
def oriented():
    return rmat_triangle_graph(scale=8, edge_factor=6, seed=7)


def _metrics_bytes(run):
    d = dataclasses.asdict(run.result.metrics)
    return repr({k: (v.tolist() if isinstance(v, np.ndarray) else v)
                 for k, v in sorted(d.items())})


class TestBackendKnob:
    def test_default_is_vectorized(self):
        assert active_backend() == VECTORIZED

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "interpreted")
        assert active_backend() == INTERPRETED

    def test_env_var_rejects_unknown(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNELS", "fortran")
        with pytest.raises(KernelError, match="fortran"):
            active_backend()

    def test_use_backend_restores(self):
        with use_backend(INTERPRETED):
            assert active_backend() == INTERPRETED
            with use_backend(VECTORIZED):
                assert active_backend() == VECTORIZED
            assert active_backend() == INTERPRETED
        assert active_backend() == VECTORIZED

    def test_set_backend_rejects_unknown(self):
        with pytest.raises(KernelError, match="known"):
            set_backend("simd")
        assert active_backend() == VECTORIZED

    def test_backends_constant(self):
        assert BACKENDS == (VECTORIZED, INTERPRETED)


class TestRegistry:
    def test_lookup_all(self):
        for (algorithm, direction) in registry.KERNELS:
            cls = kernel(algorithm, direction)
            assert cls.algorithm == algorithm
            assert cls.direction == direction

    def test_miss_names_known_kernels(self):
        with pytest.raises(KernelError, match="pagerank/pull"):
            kernel("pagerank", "push")

    def test_directions(self):
        assert registry.directions("collaborative_filtering") == \
            ("blocked-gd", "blocked-sgd")


class TestKernelDifferential:
    """Vectorized and interpreted agree on raw kernel outputs."""

    def test_pagerank_pull_bit_identical(self, graph):
        pull = kernel("pagerank", "pull")(0.3).prepare(graph)
        ranks = np.full(graph.num_vertices, 1.0)
        for _ in range(3):
            vec, work_v = pull.step(ranks)
            with use_backend(INTERPRETED):
                interp, work_i = pull.step(ranks)
            assert np.array_equal(vec, interp)     # bit-for-bit
            assert work_v == work_i
            ranks = vec

    def test_bfs_push_identical(self, graph):
        expand = kernel("bfs", "push")().prepare(graph)
        frontier = np.array([int(np.argmax(graph.out_degrees()))],
                            dtype=np.int64)
        visited = np.zeros(graph.num_vertices, dtype=bool)
        visited[frontier] = True
        while frontier.size:
            vec, work_v = expand.step(frontier)
            with use_backend(INTERPRETED):
                interp, work_i = expand.step(frontier)
            assert np.array_equal(vec, interp)
            assert work_v == work_i
            frontier = vec[~visited[vec]]
            visited[frontier] = True

    def test_triangle_masked_identical(self, oriented):
        masked = kernel("triangle_counting", "masked-spgemm")()
        masked.prepare(oriented)
        (count_v, overlap_v), work_v = masked.step()
        with use_backend(INTERPRETED):
            (count_i, overlap_i), work_i = masked.step()
        assert count_v == count_i
        assert overlap_v.nnz == overlap_i.nnz
        assert (overlap_v != overlap_i).nnz == 0
        assert work_v == work_i

    def test_semiring_spmv_identical(self, graph):
        from repro.frameworks.matrix.semiring import SEMIRINGS

        rng = np.random.default_rng(3)
        x = rng.random(graph.num_vertices)
        for name, semiring in SEMIRINGS.items():
            vec = semiring_spmv(graph, x, semiring)
            with use_backend(INTERPRETED):
                interp = semiring_spmv(graph, x, semiring)
            assert np.array_equal(vec, interp), name

    def test_cf_sweeps_allclose(self):
        from repro.datagen import netflix_like_ratings

        ratings = netflix_like_ratings(scale=9, num_items=48, seed=5)
        rng = np.random.default_rng(0)
        p0 = rng.random((ratings.num_users, 8)) / np.sqrt(8)
        q0 = rng.random((ratings.num_items, 8)) / np.sqrt(8)
        factors = {}
        for backend in BACKENDS:
            p, q = p0.copy(), q0.copy()
            sgd = kernel("collaborative_filtering",
                         "blocked-sgd")().prepare(ratings)
            gd = kernel("collaborative_filtering",
                        "blocked-gd")().prepare(ratings)
            with use_backend(backend):
                sgd.step(ratings.users, ratings.items, ratings.ratings,
                         p, q, 0.003, 0.05, 0.05)
                gd.step(p, q, 0.002, 0.05, 0.05)
                rmse = sgd.rmse(p, q)
            factors[backend] = (p, q, rmse)
        pv, qv, rv = factors[VECTORIZED]
        pi, qi, ri = factors[INTERPRETED]
        assert np.allclose(pv, pi, atol=1e-9)
        assert np.allclose(qv, qi, atol=1e-9)
        assert rv == pytest.approx(ri, abs=1e-9)


class TestKernelGate:
    def test_impossible_floor_raises_with_message(self):
        from repro.errors import PerfRegression
        from repro.perf import check_kernel_backends

        subset = {"algorithms": ("bfs",), "frameworks": ("native",),
                  "node_counts": (1,)}
        with pytest.raises(PerfRegression, match="only .*x faster"):
            check_kernel_backends(min_speedup=1e9, subset=subset)

    def test_clean_report_shape(self):
        from repro.perf import measure_kernel_backends

        subset = {"algorithms": ("bfs",), "frameworks": ("native",),
                  "node_counts": (1,)}
        report = measure_kernel_backends(subset)
        assert report["identical"]
        assert report["mismatched"] == []
        assert report["cells"] == 1
        assert report["speedup"] > 0


class TestEngineDifferential:
    """Full tier-1 cells: identical values and byte-identical metrics."""

    FRAMEWORKS = ("native", "galois", "combblas", "graphlab", "giraph",
                  "socialite")

    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs",
                                           "triangle_counting"])
    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_graph_cells(self, algorithm, framework):
        nodes = 1 if framework == "galois" else 2
        data, factor = weak_scaling_dataset(algorithm, nodes)
        runs = {}
        for backend in BACKENDS:
            with use_backend(backend):
                runs[backend] = run_experiment(algorithm, framework, data,
                                               nodes=nodes,
                                               scale_factor=factor)
        vec, interp = runs[VECTORIZED], runs[INTERPRETED]
        assert vec.status == interp.status == "ok"
        if algorithm == "triangle_counting":
            assert vec.result.values == interp.result.values
        else:
            assert np.array_equal(vec.result.values, interp.result.values)
        assert _metrics_bytes(vec) == _metrics_bytes(interp)
        assert vec.runtime() == interp.runtime()

    @pytest.mark.parametrize("framework", ["native", "combblas", "giraph"])
    def test_cf_cells(self, framework):
        data, factor = weak_scaling_dataset("collaborative_filtering", 2)
        runs = {}
        for backend in BACKENDS:
            with use_backend(backend):
                runs[backend] = run_experiment(
                    "collaborative_filtering", framework, data, nodes=2,
                    scale_factor=factor)
        vec, interp = runs[VECTORIZED], runs[INTERPRETED]
        assert vec.status == interp.status == "ok"
        for a, b in zip(vec.result.values, interp.result.values):
            assert np.allclose(a, b, atol=1e-9)
        assert _metrics_bytes(vec) == _metrics_bytes(interp)
        assert vec.runtime() == interp.runtime()
