"""Tests for the extension modules: roadmap, GPS/GraphX, Graph500,
strong scaling, persistence, CLI."""

import json

import numpy as np
import pytest

from repro.algorithms import bfs_reference, pagerank_reference
from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph
from repro.errors import ReproError
from repro.frameworks.roadmap import (
    PAPER_PREDICTED_GAP,
    ROADMAP_PROFILES,
    improved_giraph,
    improved_graphlab,
)
from repro.frameworks.vertex import gps, graphx
from repro.harness.graph500 import (
    Graph500Result,
    choose_search_keys,
    run_graph500,
    traversed_edges,
)
from repro.harness.persistence import (
    compare_artifacts,
    load_artifact,
    save_artifact,
)
from repro.harness.strong_scaling import parallel_efficiency, strong_scaling


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=81)


@pytest.fixture(scope="module")
def graph_undirected():
    return rmat_graph(scale=9, edge_factor=6, seed=81, directed=False)


class TestRoadmap:
    def test_profiles_well_formed(self):
        for name, factory in ROADMAP_PROFILES.items():
            profile = factory()
            assert profile.name.endswith("roadmap")
            assert name in PAPER_PREDICTED_GAP

    def test_improved_graphlab_uses_mpi(self):
        assert improved_graphlab().comm_layer.name == "mpi"

    def test_improved_giraph_uses_more_workers(self):
        profile = improved_giraph(workers_per_node=16)
        assert profile.cores_fraction == pytest.approx(16 / 24)
        assert profile.comm_layer.efficiency > 0.5

    def test_roadmap_closes_giraph_gap(self, graph_small):
        from repro.frameworks.roadmap import _pagerank_with_profile
        from repro.frameworks.base import GIRAPH

        stock = _pagerank_with_profile(
            graph_small, Cluster(paper_cluster(4), scale_factor=1e4),
            GIRAPH, iterations=2)
        better = _pagerank_with_profile(
            graph_small, Cluster(paper_cluster(4), scale_factor=1e4),
            improved_giraph(), iterations=2)
        assert better.runtime_for_comparison() < \
            0.4 * stock.runtime_for_comparison()
        np.testing.assert_allclose(better.values, stock.values)


class TestRelatedWorkFrameworks:
    def test_gps_pagerank_correct(self, graph_small):
        result = gps.pagerank(graph_small, Cluster(paper_cluster(2)),
                              iterations=3)
        np.testing.assert_allclose(result.values,
                                   pagerank_reference(graph_small, 3),
                                   rtol=1e-10)

    def test_graphx_bfs_correct(self, graph_undirected):
        result = graphx.bfs(graph_undirected, Cluster(paper_cluster(2)))
        np.testing.assert_array_equal(result.values,
                                      bfs_reference(graph_undirected, 0))

    def test_gps_between_pack_and_giraph(self, graph_small):
        from repro.harness import run_experiment

        times = {}
        for framework in ("graphlab", "gps", "giraph"):
            run = run_experiment("pagerank", framework, graph_small,
                                 nodes=4, scale_factor=1e4, iterations=2)
            times[framework] = run.runtime()
        assert times["graphlab"] < times["gps"] < times["giraph"]

    def test_graphx_slower_than_graphlab(self, graph_small):
        from repro.harness import run_experiment

        graphlab_run = run_experiment("pagerank", "graphlab", graph_small,
                                      nodes=4, scale_factor=1e4,
                                      iterations=2)
        graphx_run = run_experiment("pagerank", "graphx", graph_small,
                                    nodes=4, scale_factor=1e4, iterations=2)
        assert graphx_run.runtime() > 2 * graphlab_run.runtime()


class TestGraph500:
    def test_choose_keys_have_edges(self, graph_undirected):
        keys = choose_search_keys(graph_undirected, 8)
        degrees = graph_undirected.out_degrees()
        assert np.all(degrees[keys] > 0)
        assert np.unique(keys).size == keys.size

    def test_traversed_edges_bounds(self, graph_undirected):
        distances = bfs_reference(graph_undirected, 0)
        edges = traversed_edges(graph_undirected, distances)
        assert 0 <= edges <= graph_undirected.num_edges / 2

    def test_protocol_runs_and_validates(self):
        result = run_graph500(scale=9, edge_factor=8, num_roots=4,
                              nodes=2, scale_factor=100.0)
        assert isinstance(result, Graph500Result)
        assert result.all_valid
        assert result.harmonic_mean_teps > 0
        assert result.min_teps <= result.median_teps <= result.max_teps

    def test_framework_teps_ordering(self):
        native = run_graph500(scale=9, edge_factor=8, num_roots=3,
                              framework="native", scale_factor=100.0)
        giraph = run_graph500(scale=9, edge_factor=8, num_roots=3,
                              framework="giraph", scale_factor=100.0)
        assert native.harmonic_mean_teps > 10 * giraph.harmonic_mean_teps


class TestStrongScaling:
    def test_native_speeds_up_with_nodes(self):
        data = strong_scaling(frameworks=("native",), node_counts=(1, 4),
                              scale=12, scale_factor=5e3)
        curve = data["native"]
        assert curve[4] < curve[1]

    def test_parallel_efficiency(self):
        assert parallel_efficiency({1: 8.0, 4: 2.0})[4] == pytest.approx(1.0)
        assert parallel_efficiency({1: 8.0, 4: 4.0})[4] == pytest.approx(0.5)
        assert parallel_efficiency({1: "out-of-memory"}) == {}

    def test_giraph_overhead_prevents_scaling(self):
        data = strong_scaling(frameworks=("giraph",), node_counts=(1, 4),
                              scale=11, scale_factor=1e3)
        efficiency = parallel_efficiency(data["giraph"])
        # Fixed superstep overheads do not parallelize.
        assert efficiency[4] < 0.6


class TestPersistence:
    def test_round_trip(self, tmp_path):
        data = {"pagerank": {"combblas": {"slowdown": 1.9}}}
        path = save_artifact(tmp_path / "t5.json", "table5", data,
                             metadata={"nodes": 1})
        loaded = load_artifact(path)
        assert loaded["artifact"] == "table5"
        assert loaded["data"]["pagerank"]["combblas"]["slowdown"] == 1.9
        assert loaded["metadata"]["nodes"] == 1

    def test_nan_becomes_null(self, tmp_path):
        path = save_artifact(tmp_path / "x.json", "t",
                             {"v": float("nan")})
        assert json.loads(path.read_text())["data"]["v"] is None

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ReproError):
            load_artifact(tmp_path / "missing.json")

    def test_compare_clean(self, tmp_path):
        a = save_artifact(tmp_path / "a.json", "table5", {"x": 2.0})
        b = save_artifact(tmp_path / "b.json", "table5", {"x": 2.1})
        diff = compare_artifacts(load_artifact(a), load_artifact(b),
                                 tolerance=0.25)
        assert diff["clean"]

    def test_compare_flags_drift(self, tmp_path):
        a = save_artifact(tmp_path / "a.json", "table5", {"x": 2.0})
        b = save_artifact(tmp_path / "b.json", "table5",
                          {"x": 4.0, "y": 1.0})
        diff = compare_artifacts(load_artifact(a), load_artifact(b))
        assert not diff["clean"]
        assert "/x" in diff["drifted"]
        assert diff["added"] == ["/y"]

    def test_compare_artifact_mismatch(self, tmp_path):
        a = save_artifact(tmp_path / "a.json", "table5", {})
        b = save_artifact(tmp_path / "b.json", "table6", {})
        with pytest.raises(ReproError):
            compare_artifacts(load_artifact(a), load_artifact(b))


class TestCLI:
    def test_run_command(self, capsys):
        from repro.cli import main

        code = main(["run", "pagerank", "native", "--dataset", "rmat_mini",
                     "--nodes", "2", "--scale-factor", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "runtime" in out and "bound by" in out

    def test_run_unsupported_returns_nonzero(self, capsys):
        from repro.cli import main

        code = main(["run", "pagerank", "galois", "--dataset", "rmat_mini",
                     "--nodes", "4"])
        # Failure classes map to distinct exit codes (see --help):
        # unsupported-by-programming-model is 4.
        assert code == 4
        assert "unsupported" in capsys.readouterr().out

    def test_datasets_command(self, capsys):
        from repro.cli import main

        assert main(["datasets"]) == 0
        assert "twitter" in capsys.readouterr().out

    def test_frameworks_command(self, capsys):
        from repro.cli import main

        assert main(["frameworks"]) == 0
        out = capsys.readouterr().out
        assert "gps" in out and "graphx" in out

    def test_table_command_with_save(self, tmp_path, capsys):
        from repro.cli import main

        save = tmp_path / "table2.json"
        assert main(["table", "2", "--save", str(save)]) == 0
        assert save.exists()
        assert "CombBLAS" in capsys.readouterr().out

    def test_unknown_table_number(self, capsys):
        from repro.cli import main

        assert main(["table", "9"]) == 2

    def test_graph500_command(self, capsys):
        from repro.cli import main

        assert main(["graph500", "--scale", "9", "--roots", "3"]) == 0
        assert "TEPS" in capsys.readouterr().out
