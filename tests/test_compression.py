"""Tests for the message compression codecs (Section 6.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks.native import (
    bitvector_decode,
    bitvector_encode,
    delta_varint_decode,
    delta_varint_encode,
    encode_id_set,
    encoded_size,
)


class TestDeltaVarint:
    def test_round_trip(self):
        ids = np.array([3, 100, 101, 5000, 70000])
        decoded = delta_varint_decode(delta_varint_encode(ids))
        np.testing.assert_array_equal(decoded, ids)

    def test_unsorted_input_sorted_on_decode(self):
        ids = np.array([50, 3, 20])
        decoded = delta_varint_decode(delta_varint_encode(ids))
        np.testing.assert_array_equal(decoded, [3, 20, 50])

    def test_empty(self):
        assert delta_varint_encode(np.array([], dtype=np.int64)) == b""
        assert delta_varint_decode(b"").size == 0

    def test_dense_ids_compress_well(self):
        # Consecutive ids: one byte per gap vs 8 bytes raw.
        ids = np.arange(1000, 2000)
        blob = delta_varint_encode(ids)
        assert len(blob) < 1100  # ~1 byte/id + the base offset
        assert len(blob) < 8 * ids.size / 6

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            delta_varint_encode(np.array([-1]))

    def test_truncated_stream_rejected(self):
        blob = delta_varint_encode(np.array([300]))
        with pytest.raises(ValueError):
            delta_varint_decode(blob[:-1])


class TestBitvectorCodec:
    def test_round_trip(self):
        ids = np.array([0, 63, 64, 500])
        decoded = bitvector_decode(bitvector_encode(ids, 512), 512)
        np.testing.assert_array_equal(decoded, ids)

    def test_size_is_fixed(self):
        assert len(bitvector_encode(np.array([1]), 640)) == 80
        assert len(bitvector_encode(np.arange(640), 640)) == 80


class TestAdaptive:
    def test_sparse_ids_use_varint(self):
        ids = np.array([5, 100000])
        _, scheme = encode_id_set(ids, universe=1_000_000)
        assert scheme == "delta-varint"

    def test_dense_ids_use_bitvector(self):
        ids = np.arange(0, 10000, 2)
        _, scheme = encode_id_set(ids, universe=10000)
        assert scheme == "bitvector"

    def test_encoded_size_close_to_real_encoding(self):
        rng = np.random.default_rng(0)
        for universe, count in [(10_000, 50), (10_000, 5_000), (100, 90)]:
            ids = np.unique(rng.integers(0, universe, count))
            blob, _ = encode_id_set(ids, universe)
            estimate = encoded_size(ids, universe)
            assert abs(estimate - len(blob)) <= 0.25 * len(blob) + 8

    def test_compression_beats_raw_for_typical_frontier(self):
        # A BFS frontier covering 10% of a partition: compressed size
        # must be several times below 8 bytes/id (paper reports 3.2x
        # end-to-end for BFS).
        rng = np.random.default_rng(1)
        ids = np.unique(rng.integers(0, 100_000, 10_000))
        assert encoded_size(ids, 100_000) < 8 * ids.size / 3


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=100_000), max_size=300))
def test_varint_round_trip_property(id_set):
    ids = np.asarray(sorted(id_set), dtype=np.int64)
    decoded = delta_varint_decode(delta_varint_encode(ids))
    np.testing.assert_array_equal(decoded, ids)


@settings(max_examples=40, deadline=None)
@given(st.sets(st.integers(min_value=0, max_value=4095), max_size=200))
def test_adaptive_round_trip_property(id_set):
    ids = np.asarray(sorted(id_set), dtype=np.int64)
    blob, scheme = encode_id_set(ids, universe=4096)
    if scheme == "delta-varint":
        decoded = delta_varint_decode(blob)
    else:
        decoded = bitvector_decode(blob, 4096)
    np.testing.assert_array_equal(decoded, ids)
