"""Tests for the native hand-optimized kernels."""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
    validate_distances,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph, rmat_triangle_graph, netflix_like_ratings
from repro.frameworks.native import (
    NativeOptions,
    bfs,
    collaborative_filtering,
    iterations_to_rmse,
    pagerank,
    triangle_count,
)


@pytest.fixture(scope="module")
def graph_directed():
    return rmat_graph(scale=10, edge_factor=8, seed=11)


@pytest.fixture(scope="module")
def graph_undirected():
    return rmat_graph(scale=10, edge_factor=8, seed=11, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=9, edge_factor=8, seed=12)


@pytest.fixture(scope="module")
def ratings_small():
    return netflix_like_ratings(scale=9, num_items=48, seed=13)


def make_cluster(nodes=1, **kwargs):
    return Cluster(paper_cluster(nodes), **kwargs)


class TestNativePageRank:
    def test_matches_reference_single_node(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(1), iterations=5)
        expected = pagerank_reference(graph_directed, iterations=5)
        np.testing.assert_allclose(result.values, expected, rtol=1e-12)

    def test_matches_reference_multi_node(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(4), iterations=5)
        expected = pagerank_reference(graph_directed, iterations=5)
        np.testing.assert_allclose(result.values, expected, rtol=1e-12)

    def test_iteration_accounting(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(2), iterations=7)
        assert result.iterations == 7
        assert result.metrics.num_iterations == 7
        assert result.time_per_iteration_s > 0

    def test_early_convergence(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(1), iterations=200,
                          tolerance=1e-10)
        assert result.iterations < 200

    def test_single_node_sends_nothing(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(1), iterations=3)
        assert result.metrics.bytes_sent_total == 0

    def test_multi_node_sends_messages(self, graph_directed):
        result = pagerank(graph_directed, make_cluster(4), iterations=3)
        assert result.metrics.bytes_sent_total > 0

    def test_compression_reduces_traffic(self, graph_directed):
        on = pagerank(graph_directed, make_cluster(4), iterations=2,
                      options=NativeOptions())
        off = pagerank(graph_directed, make_cluster(4), iterations=2,
                       options=NativeOptions(compression=False))
        assert on.metrics.bytes_sent_total < off.metrics.bytes_sent_total
        assert on.extras["compression_ratio"] > 1.5

    def test_optimizations_speed_things_up(self, graph_directed):
        slow = pagerank(graph_directed, make_cluster(4), iterations=3,
                        options=NativeOptions.baseline())
        fast = pagerank(graph_directed, make_cluster(4), iterations=3,
                        options=NativeOptions())
        assert fast.total_time_s < slow.total_time_s

    def test_validates_arguments(self, graph_directed):
        with pytest.raises(ValueError):
            pagerank(graph_directed, make_cluster(1), iterations=0)
        with pytest.raises(ValueError):
            pagerank(graph_directed, make_cluster(1), damping=1.5)

    def test_memory_bound_single_node(self, graph_directed):
        # Table 4: single-node PageRank is memory-bandwidth limited.
        result = pagerank(graph_directed, make_cluster(1), iterations=3)
        assert result.metrics.bound_by() == "memory"


class TestNativeBFS:
    def test_matches_reference(self, graph_undirected):
        result = bfs(graph_undirected, make_cluster(1), source=0)
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_undirected, 0)
        )

    def test_matches_reference_multi_node(self, graph_undirected):
        result = bfs(graph_undirected, make_cluster(4), source=0)
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_undirected, 0)
        )

    def test_distances_valid_property(self, graph_undirected):
        result = bfs(graph_undirected, make_cluster(2), source=5)
        assert validate_distances(graph_undirected, 5, result.values)

    def test_levels_equal_iterations(self, graph_undirected):
        # The final superstep expands the deepest frontier and discovers
        # nothing, so supersteps = max distance + 1.
        result = bfs(graph_undirected, make_cluster(2), source=0)
        max_distance = max(
            d for d in result.values if d != np.iinfo(np.int32).max
        )
        assert result.iterations == max_distance + 1

    def test_frontier_sizes_recorded(self, graph_undirected):
        result = bfs(graph_undirected, make_cluster(1), source=0)
        sizes = result.extras["frontier_sizes"]
        assert sizes[0] == 1
        assert sum(sizes) == result.extras["reached"]

    def test_source_validation(self, graph_undirected):
        with pytest.raises(ValueError):
            bfs(graph_undirected, make_cluster(1), source=-1)

    def test_bitvector_speeds_up(self, graph_undirected):
        with_bv = bfs(graph_undirected, make_cluster(1),
                      options=NativeOptions())
        without = bfs(graph_undirected, make_cluster(1),
                      options=NativeOptions(bitvector=False))
        assert with_bv.total_time_s < without.total_time_s

    def test_compression_reduces_traffic(self, graph_undirected):
        on = bfs(graph_undirected, make_cluster(4), options=NativeOptions())
        off = bfs(graph_undirected, make_cluster(4),
                  options=NativeOptions(compression=False))
        assert on.metrics.bytes_sent_total < off.metrics.bytes_sent_total
        # Paper: BFS id streams compress well (3.2x end-to-end benefit).
        assert on.extras["compression_ratio"] > 2.0

    def test_isolated_source(self):
        from repro.graph import CSRGraph, EdgeList
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, [(1, 2), (2, 1)]))
        result = bfs(graph, make_cluster(1), source=0)
        assert result.extras["reached"] == 1
        # One superstep expands the isolated source and finds nothing.
        assert result.iterations == 1


class TestNativeTriangles:
    def test_matches_reference(self, graph_triangles):
        result = triangle_count(graph_triangles, make_cluster(1))
        assert result.values == triangle_count_reference(graph_triangles)

    def test_count_independent_of_nodes(self, graph_triangles):
        single = triangle_count(graph_triangles, make_cluster(1))
        multi = triangle_count(graph_triangles, make_cluster(4))
        assert single.values == multi.values

    def test_traffic_exceeds_graph_size(self, graph_triangles):
        # Table 1 / Section 2.1: triangle counting's total message size
        # is much larger than the graph itself.
        result = triangle_count(graph_triangles, make_cluster(4),
                                options=NativeOptions(compression=False))
        graph_bytes = 8 * graph_triangles.num_edges
        assert result.metrics.bytes_sent_total > graph_bytes

    def test_bitvector_speeds_up(self, graph_triangles):
        fast = triangle_count(graph_triangles, make_cluster(1),
                              options=NativeOptions())
        slow = triangle_count(graph_triangles, make_cluster(1),
                              options=NativeOptions(bitvector=False))
        assert fast.total_time_s < slow.total_time_s
        # Paper reports ~2.2x from the bit-vector (Section 6.1.2).
        assert 1.3 < slow.total_time_s / fast.total_time_s < 4.0

    def test_overlap_bounds_buffer_memory(self, graph_triangles):
        blocked = triangle_count(graph_triangles, make_cluster(4),
                                 options=NativeOptions())
        buffered = triangle_count(
            graph_triangles,
            Cluster(paper_cluster(4), enforce_memory=False),
            options=NativeOptions(overlap=False, compression=False),
        )
        assert blocked.metrics.memory_footprint_bytes <= \
            buffered.metrics.memory_footprint_bytes


class TestNativeCF:
    def test_sgd_rmse_decreases(self, ratings_small):
        result = collaborative_filtering(ratings_small, make_cluster(1),
                                         hidden_dim=8, iterations=5,
                                         method="sgd", seed=1)
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]

    def test_gd_rmse_decreases(self, ratings_small):
        result = collaborative_filtering(ratings_small, make_cluster(1),
                                         hidden_dim=8, iterations=5,
                                         method="gd", gamma0=0.002, seed=1)
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]

    def test_multi_node_sgd_converges(self, ratings_small):
        result = collaborative_filtering(ratings_small, make_cluster(4),
                                         hidden_dim=8, iterations=5,
                                         method="sgd", seed=1)
        assert result.extras["rmse_curve"][-1] < result.extras["rmse_curve"][0]
        assert result.metrics.bytes_sent_total > 0

    def test_factor_shapes(self, ratings_small):
        result = collaborative_filtering(ratings_small, make_cluster(1),
                                         hidden_dim=8, iterations=2)
        p_factors, q_factors = result.values
        assert p_factors.shape == (ratings_small.num_users, 8)
        assert q_factors.shape == (ratings_small.num_items, 8)

    def test_sgd_beats_gd_per_iteration(self, ratings_small):
        # The paper's key observation: SGD reaches a fixed RMSE in far
        # fewer iterations than GD.
        sgd = collaborative_filtering(ratings_small, make_cluster(1),
                                      hidden_dim=8, iterations=10,
                                      method="sgd", gamma0=0.02,
                                      step_decay=0.99, seed=3)
        gd = collaborative_filtering(ratings_small, make_cluster(1),
                                     hidden_dim=8, iterations=10,
                                     method="gd", gamma0=0.002,
                                     step_decay=0.99, seed=3)
        assert sgd.extras["rmse_curve"][-1] < gd.extras["rmse_curve"][-1]

    def test_iterations_to_rmse(self, ratings_small):
        n = iterations_to_rmse(ratings_small, target_rmse=1.3, method="sgd",
                               hidden_dim=8, max_iterations=50, seed=0)
        assert 1 <= n <= 50

    def test_validates_method(self, ratings_small):
        with pytest.raises(ValueError):
            collaborative_filtering(ratings_small, make_cluster(1),
                                    method="adam")
