"""The chaos subsystem: seeded fault injection + checkpoint/recovery.

The properties that make fault injection *measurement* rather than
noise: the same seed replays the same fault timeline bit-for-bit, each
probabilistic fault kind draws from its own RNG stream (enabling one
never perturbs another), recovery replays until the answers are exact,
and every second of chaos overhead is accounted — on the clock, in
``RunResult.recovery`` and in the trace. Plus the source audit that
keeps the whole package deterministic: no un-seeded random APIs
anywhere under ``src/repro``.
"""

import io
import re
import tokenize
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    FaultSchedule,
    LatencySpike,
    MessageCorruption,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    RetryPolicy,
    StragglerNode,
    checkpointing,
    policy_for_profile,
)
from repro.datagen import rmat_graph
from repro.errors import NodeFailure, ReproError, SimulationError
from repro.frameworks.base import PROFILES
from repro.harness import run_experiment
from repro.rng import derive, spawn_key

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=6, seed=81, directed=False)


def giraph_bfs(graph, **kwargs):
    result = run_experiment("bfs", "giraph", graph, nodes=4, **kwargs)
    assert result.ok, result.failure
    return result


# ---------------------------------------------------------------------------
# Spec parsing


class TestSpecParsing:
    def test_full_grammar_round_trips(self):
        spec = ("crash(node=2, superstep=3); drop(p=0.01, at=0:20); "
                "latency(factor=8, at=4:6); straggler(node=1, factor=4, "
                "at=2:5); partition(nodes=0+1, at=2:3); corrupt(p=0.001)")
        schedule = FaultSchedule.from_spec(spec, seed=5)
        assert schedule.faults == (
            NodeCrash(node=2, superstep=3),
            MessageDrop(probability=0.01, window=(0, 20)),
            LatencySpike(factor=8.0, window=(4, 6)),
            StragglerNode(node=1, factor=4.0, window=(2, 5)),
            NetworkPartition(nodes=(0, 1), window=(2, 3)),
            MessageCorruption(probability=0.001, window=(0, None)),
        )
        reparsed = FaultSchedule.from_spec(schedule.spec(), seed=5)
        assert reparsed.faults == schedule.faults

    def test_window_forms(self):
        (fault,) = FaultSchedule.from_spec("latency(factor=2, at=3)").faults
        assert fault.window == (3, 4)
        (fault,) = FaultSchedule.from_spec("latency(factor=2, at=3:)").faults
        assert fault.window == (3, None)
        (fault,) = FaultSchedule.from_spec("latency(factor=2, at=:5)").faults
        assert fault.window == (0, 5)
        (fault,) = FaultSchedule.from_spec("crash(node=1, at=4)").faults
        assert fault == NodeCrash(node=1, superstep=4)

    @pytest.mark.parametrize("bad", (
        "explode(node=1)",                  # unknown fault
        "crash(node=1)",                    # missing superstep
        "crash node=1",                     # not a clause
        "drop(p=0)",                        # p out of range
        "drop(p=1.5)",
        "drop()",                           # missing p
        "latency(factor=2, at=5:3)",        # empty window
        "latency(factor=2, nodes=1)",       # stray key
        "straggler(node=x, factor=2)",      # not an int
    ))
    def test_bad_specs_raise_typed_errors(self, bad):
        with pytest.raises(SimulationError):
            FaultSchedule.from_spec(bad)

    def test_unknown_fault_object_rejected(self):
        with pytest.raises(SimulationError):
            FaultSchedule([object()])

    def test_validate_rejects_out_of_cluster_nodes(self, graph):
        with pytest.raises(SimulationError, match="nodes 0..3"):
            giraph_bfs(graph, faults="crash(node=9, superstep=1)")


# Strategies that survive the spec's %g float formatting exactly.
_windows = st.one_of(
    st.just((0, None)),
    st.tuples(st.integers(0, 10), st.just(None)),
    st.integers(0, 10).flatmap(
        lambda start: st.tuples(st.just(start), st.integers(start + 1, 14))),
)
_probabilities = st.sampled_from((0.001, 0.01, 0.05, 0.25, 0.5, 1.0))
_factors = st.sampled_from((1.5, 2.0, 4.0, 8.0, 16.0))
_faults = st.one_of(
    st.builds(NodeCrash, node=st.integers(0, 3), superstep=st.integers(0, 12)),
    st.builds(StragglerNode, node=st.integers(0, 3), factor=_factors,
              window=_windows),
    st.builds(LatencySpike, factor=_factors, window=_windows),
    st.builds(MessageDrop, probability=_probabilities, window=_windows),
    st.builds(MessageCorruption, probability=_probabilities, window=_windows),
    st.builds(NetworkPartition,
              nodes=st.lists(st.integers(0, 3), min_size=1, max_size=3,
                             unique=True).map(tuple),
              window=_windows),
)


class TestSpecProperties:
    @settings(max_examples=40, deadline=None)
    @given(faults=st.lists(_faults, max_size=6), seed=st.integers(0, 2**31))
    def test_any_schedule_round_trips_through_spec(self, faults, seed):
        schedule = FaultSchedule(faults, seed=seed)
        reparsed = FaultSchedule.from_spec(schedule.spec(), seed=seed)
        assert reparsed.faults == schedule.faults
        assert reparsed.spec() == schedule.spec()

    @settings(max_examples=40, deadline=None)
    @given(faults=st.lists(_faults, max_size=6), seed=st.integers(0, 2**31),
           superstep=st.integers(0, 14))
    def test_fresh_schedules_resolve_identically(self, faults, seed,
                                                 superstep):
        first = FaultSchedule(faults, seed=seed)
        second = first.fresh()
        retry = RetryPolicy()
        a = first.at(superstep, 4, retry)
        b = second.at(superstep, 4, retry)
        assert a.crashes == b.crashes
        assert a.events == b.events
        assert (a.compute_factors is None) == (b.compute_factors is None)
        if a.compute_factors is not None:
            np.testing.assert_array_equal(a.compute_factors,
                                          b.compute_factors)
        assert (a.disruption is None) == (b.disruption is None)
        if a.disruption is not None:
            wire = np.full((4, 4), 1e6)
            np.fill_diagonal(wire, 0.0)
            wire_a, stall_a, info_a = a.disruption.apply(wire.copy())
            wire_b, stall_b, info_b = b.disruption.apply(wire.copy())
            np.testing.assert_array_equal(wire_a, wire_b)
            np.testing.assert_array_equal(stall_a, stall_b)
            assert info_a == info_b

    @settings(max_examples=40, deadline=None)
    @given(attempts=st.integers(1, 8),
           base=st.floats(0.001, 1.0, allow_nan=False),
           multiplier=st.floats(1.0, 4.0, allow_nan=False))
    def test_retry_backoff_math(self, attempts, base, multiplier):
        policy = RetryPolicy(max_attempts=attempts, base_backoff_s=base,
                             multiplier=multiplier)
        assert policy.backoff_s(1) == pytest.approx(base)
        total = sum(policy.backoff_s(i) for i in range(1, attempts + 1))
        assert policy.total_backoff_s() == pytest.approx(total)
        # Geometric growth: each retry waits at least as long as the last.
        waits = [policy.backoff_s(i) for i in range(1, attempts + 1)]
        assert all(b >= a for a, b in zip(waits, waits[1:]))


# ---------------------------------------------------------------------------
# Determinism


class TestDeterminism:
    def test_same_seed_same_timeline_twice(self, graph):
        spec = "crash(node=2, superstep=2); drop(p=0.05); corrupt(p=0.02)"
        runs = [giraph_bfs(graph, faults=spec, fault_seed=9)
                for _ in range(2)]
        first, second = runs
        assert first.result.metrics.total_time_s \
            == second.result.metrics.total_time_s
        assert first.recovery.to_dict() == second.recovery.to_dict()
        assert first.recovery.events == second.recovery.events
        np.testing.assert_array_equal(first.result.values,
                                      second.result.values)

    def test_different_seed_different_drops(self, graph):
        spec = "drop(p=0.2)"
        drops = {run_experiment("pagerank", "giraph", graph, nodes=4,
                                iterations=4, faults=spec,
                                fault_seed=seed).recovery.messages_dropped
                 for seed in range(6)}
        assert len(drops) > 1

    def test_schedule_object_is_freshened_per_run(self, graph):
        schedule = FaultSchedule.from_spec("drop(p=0.1)", seed=3)
        first = giraph_bfs(graph, faults=schedule)
        second = giraph_bfs(graph, faults=schedule)
        assert first.recovery.to_dict() == second.recovery.to_dict()
        assert first.result.metrics.total_time_s \
            == second.result.metrics.total_time_s

    def test_fault_streams_are_independent(self, graph):
        """Enabling corruption must not move the drop timeline."""
        alone = giraph_bfs(graph, faults="drop(p=0.1)", fault_seed=4)
        paired = giraph_bfs(graph, faults="drop(p=0.1); corrupt(p=0.1)",
                            fault_seed=4)
        assert alone.recovery.messages_dropped \
            == paired.recovery.messages_dropped

    def test_rng_streams_derive_per_component(self):
        assert spawn_key("chaos", "drop") != spawn_key("chaos", "corrupt")
        a = derive(7, "chaos", "drop").random(8)
        b = derive(7, "chaos", "drop").random(8)
        c = derive(7, "chaos", "corrupt").random(8)
        np.testing.assert_array_equal(a, b)
        assert not np.array_equal(a, c)


UNSEEDED_NUMPY = re.compile(
    r"np\.random\.(?!default_rng|Generator|SeedSequence|PCG64)\w+")
BARE_RANDOM = re.compile(r"^\s*(import random\b|from random import)")


class TestNoUnseededRandomness:
    """Audit: all randomness under src/repro flows through seeded
    Generators (``repro.rng`` streams or explicit ``default_rng(seed)``);
    the legacy global ``np.random.*`` API and the stdlib ``random``
    module are banned outright."""

    @staticmethod
    def _code_lines(source: str):
        """Source lines with string/comment tokens blanked out, so
        docstrings may *mention* the banned APIs."""
        lines = source.splitlines()
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type not in (tokenize.STRING, tokenize.COMMENT):
                continue
            (start_row, start_col), (end_row, end_col) = \
                token.start, token.end
            for row in range(start_row - 1, end_row):
                line = lines[row]
                left = start_col if row == start_row - 1 else 0
                right = end_col if row == end_row - 1 else len(line)
                lines[row] = line[:left] + " " * (right - left) + line[right:]
        return lines

    @pytest.mark.parametrize(
        "path", sorted(SRC.rglob("*.py")),
        ids=lambda p: str(p.relative_to(SRC)))
    def test_no_unseeded_random_apis(self, path):
        for number, code in enumerate(self._code_lines(path.read_text()), 1):
            match = UNSEEDED_NUMPY.search(code) or BARE_RANDOM.search(code)
            assert not match, (
                f"{path.relative_to(SRC)}:{number} uses an un-seeded "
                f"random API: {code.strip()!r}")


# ---------------------------------------------------------------------------
# Checkpoint/recovery semantics


class TestCheckpointRecovery:
    def test_crash_at_every_superstep_bfs(self, graph):
        """Golden sweep: kill node 2 at each superstep in turn; Giraph
        must recover and still produce the golden-reference BFS tree."""
        from repro.algorithms import bfs_reference
        from repro.harness import default_params

        source = default_params("bfs", graph)["source"]
        golden = bfs_reference(graph, source)
        clean = giraph_bfs(graph)
        np.testing.assert_array_equal(clean.result.values, golden)
        steps = len(clean.result.metrics.steps)
        assert steps >= 3
        for superstep in range(steps):
            chaos = giraph_bfs(
                graph, faults=f"crash(node=2, superstep={superstep})")
            np.testing.assert_array_equal(chaos.result.values, golden)
            stats = chaos.recovery
            assert stats.crashes == 1 and stats.recoveries == 1
            assert stats.recovery_time_s > 0
            assert chaos.result.metrics.total_time_s \
                > clean.result.metrics.total_time_s

    def test_crash_at_every_superstep_pagerank(self, graph):
        from repro.algorithms import pagerank_reference

        golden = pagerank_reference(graph, 4)
        clean = run_experiment("pagerank", "giraph", graph, nodes=4,
                               iterations=4)
        np.testing.assert_allclose(clean.result.values, golden, rtol=1e-9)
        steps = len(clean.result.metrics.steps)
        for superstep in range(steps):
            chaos = run_experiment(
                "pagerank", "giraph", graph, nodes=4, iterations=4,
                faults=f"crash(node=2, superstep={superstep})")
            assert chaos.ok, chaos.failure
            np.testing.assert_array_equal(chaos.result.values,
                                          clean.result.values)
            np.testing.assert_allclose(chaos.result.values, golden,
                                       rtol=1e-9)
            assert chaos.recovery.recoveries == 1
            assert chaos.recovery.recovery_time_s > 0

    def test_checkpoint_cadence_and_cost(self, graph):
        """Every-2-supersteps checkpoints: count them, and their cost is
        exactly the chaos run's runtime delta under a no-op schedule."""
        clean = run_experiment("pagerank", "giraph", graph, nodes=4,
                               iterations=4)
        chaos = run_experiment("pagerank", "giraph", graph, nodes=4,
                               iterations=4,
                               faults="straggler(node=0, factor=1)")
        assert chaos.ok, chaos.failure
        steps = len(clean.result.metrics.steps)
        stats = chaos.recovery
        expected = len([k for k in range(steps) if k > 0 and k % 2 == 0])
        assert stats.checkpoints_written == expected
        assert stats.checkpoint_bytes > 0
        assert chaos.result.metrics.total_time_s == pytest.approx(
            clean.result.metrics.total_time_s + stats.checkpoint_time_s)
        np.testing.assert_array_equal(chaos.result.values,
                                      clean.result.values)

    def test_recovery_breakdown_sums(self, graph):
        chaos = giraph_bfs(graph, faults="crash(node=1, superstep=2)")
        stats = chaos.recovery
        policy = PROFILES["giraph"].recovery_policy()
        assert stats.recovery_time_s == pytest.approx(
            policy.detect_timeout_s + stats.restore_time_s
            + stats.replay_time_s)
        assert stats.total_overhead_s == pytest.approx(
            stats.checkpoint_time_s + stats.recovery_time_s
            + stats.retry_time_s)

    def test_transient_faults_cost_time_not_answers(self, graph):
        clean = giraph_bfs(graph)
        chaos = giraph_bfs(
            graph, faults="drop(p=0.1); latency(factor=8, at=1:3); "
                          "straggler(node=1, factor=4, at=0:2)",
            fault_seed=11)
        np.testing.assert_array_equal(chaos.result.values,
                                      clean.result.values)
        assert chaos.result.metrics.total_time_s \
            > clean.result.metrics.total_time_s
        assert chaos.recovery.crashes == 0

    def test_partition_stalls_cross_traffic(self, graph):
        clean = run_experiment("pagerank", "giraph", graph, nodes=4,
                               iterations=3)
        chaos = run_experiment("pagerank", "giraph", graph, nodes=4,
                               iterations=3,
                               faults="partition(nodes=0+1, at=1:2)")
        assert chaos.ok, chaos.failure
        stats = chaos.recovery
        assert any(event["kind"] == "partition" for event in stats.events)
        backoff = RetryPolicy().total_backoff_s()
        assert chaos.result.metrics.total_time_s >= \
            clean.result.metrics.total_time_s + backoff - 1e-9

    def test_faults_off_is_byte_identical(self, graph):
        """The chaos subsystem must cost nothing when not asked for."""
        a = giraph_bfs(graph)
        b = giraph_bfs(graph)
        assert a.recovery is None and b.recovery is None
        assert a.result.metrics.total_time_s == b.result.metrics.total_time_s
        np.testing.assert_array_equal(a.result.values, b.result.values)


# ---------------------------------------------------------------------------
# Policies and typed failures


class TestPolicies:
    def test_profiles_declare_their_fault_axis(self):
        assert PROFILES["giraph"].fault_policy == "checkpoint"
        for name in ("native", "combblas", "graphlab", "socialite",
                     "galois"):
            assert PROFILES[name].fault_policy == "fail-fast", name

    def test_policy_for_profile(self):
        giraph = policy_for_profile(PROFILES["giraph"])
        assert giraph.recovers_crashes
        assert giraph.checkpoint_interval == 2
        assert giraph.checkpoint_due(2) and giraph.checkpoint_due(4)
        assert not giraph.checkpoint_due(0) and not giraph.checkpoint_due(3)
        native = policy_for_profile(PROFILES["native"])
        assert not native.recovers_crashes
        assert policy_for_profile(None).mode == "fail-fast"

    def test_checkpointing_factory_validates(self):
        policy = checkpointing(interval=3, overhead_s=0.1)
        assert policy.recovers_crashes and policy.checkpoint_interval == 3
        with pytest.raises(ValueError):
            checkpointing(interval=-1)
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)

    def test_node_failure_is_typed(self, graph):
        with pytest.raises(NodeFailure) as excinfo:
            run_experiment("bfs", "native", graph, nodes=4,
                           faults="crash(node=2, superstep=1)")
        failure = excinfo.value
        assert isinstance(failure, ReproError)
        assert failure.node == 2 and failure.superstep == 1
        assert "node 2" in str(failure) and "superstep 1" in str(failure)

    def test_recovery_override_saves_a_fail_fast_run(self, graph):
        """An explicit recovery= policy can outvote the profile."""
        clean = run_experiment("bfs", "native", graph, nodes=4)
        saved = run_experiment("bfs", "native", graph, nodes=4,
                               faults="crash(node=2, superstep=1)",
                               recovery=checkpointing(interval=2))
        assert saved.ok, saved.failure
        np.testing.assert_array_equal(saved.result.values,
                                      clean.result.values)
        assert saved.recovery.recoveries == 1

    def test_run_result_to_dict_carries_recovery(self, graph):
        import json

        chaos = giraph_bfs(graph, faults="crash(node=2, superstep=1)")
        payload = json.loads(json.dumps(chaos.to_dict()))
        assert payload["config"]["faults"] == "crash(node=2, superstep=1)"
        assert payload["recovery"]["recoveries"] == 1
        assert payload["recovery"]["recovery_time_s"] > 0
        kinds = [event["kind"] for event in payload["recovery"]["events"]]
        assert kinds.count("node-crash") == 1
        assert kinds.count("recovery") == 1
