"""Supervised worker pool: surviving real process faults.

These tests inject *actual* faults — SIGKILLed workers, hung cells,
memory balloons, killed parents — through :mod:`repro.chaos.real` and
assert the supervisor's contract: the sweep always completes (or drains
cleanly), faults land in the DNF taxonomy (``crashed``, wall-clock
``timeout``, ``out-of-memory``), and journals of the *surviving* cells
stay byte-identical to a clean serial run at any worker count,
including across a no-chaos ``--resume``.
"""

import json
import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.chaos import (
    BalloonMemory,
    HangCell,
    KillWorker,
    RealFaultPlan,
    resolve_real_chaos,
)
from repro.errors import ReproError, SimulationError, SweepInterrupted
from repro.harness import STATUS_CRASHED, Sweep
from repro.observability import Tracer

SRC = str(Path(__file__).resolve().parent.parent / "src")


def keys(n):
    return [{"i": i} for i in range(n)]


def ok_executor(key, budget_s=None):
    return {"x": key["i"] * 10}


class TestRealFaultPlan:
    def test_spec_roundtrip(self):
        spec = ("kill(cell=3); kill(cell=5, times=99); "
                "hang(cell=7, seconds=300); oom(cell=2, mb=512)")
        plan = RealFaultPlan.from_spec(spec)
        assert len(plan) == 4
        assert plan.faults == (
            KillWorker(cell=3), KillWorker(cell=5, times=99),
            HangCell(cell=7, seconds=300.0), BalloonMemory(cell=2, mb=512))
        assert RealFaultPlan.from_spec(plan.spec()) == plan

    def test_defaults(self):
        plan = RealFaultPlan.from_spec("hang(cell=1); oom(cell=2)")
        assert plan.faults[0].seconds == 3600.0
        assert plan.faults[1].mb == 1024

    def test_parse_errors(self):
        for bad in ("explode(cell=1)", "kill(1)", "kill(cell=-1)",
                    "kill(cell=1, bogus=2)", "kill cell 1",
                    "kill(cell=1, times=0)", "hang(cell=1, seconds=0)"):
            with pytest.raises(SimulationError):
                RealFaultPlan.from_spec(bad)

    def test_env_resolution(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS_REAL", raising=False)
        assert resolve_real_chaos(None) is None
        monkeypatch.setenv("REPRO_CHAOS_REAL", "kill(cell=2)")
        plan = resolve_real_chaos(None)
        assert plan == RealFaultPlan([KillWorker(cell=2)])
        # Explicit values win over the environment.
        assert len(resolve_real_chaos("kill(cell=1); kill(cell=3)")) == 2

    def test_validate_rejects_out_of_range_and_uncapped_balloons(self):
        plan = RealFaultPlan.from_spec("kill(cell=9)")
        with pytest.raises(SimulationError, match="cells 0..5"):
            plan.validate(6, memory_limited=False)
        balloon = RealFaultPlan.from_spec("oom(cell=1)")
        with pytest.raises(SimulationError, match="memory.limit"):
            balloon.validate(6, memory_limited=False)
        balloon.validate(6, memory_limited=True)

    def test_kill_now_counts_dispatches(self):
        plan = RealFaultPlan.from_spec("kill(cell=4, times=2)")
        assert plan.kill_now(4, crashes=0)
        assert plan.kill_now(4, crashes=1)
        assert not plan.kill_now(4, crashes=2)
        assert not plan.kill_now(3, crashes=0)


class TestSupervisedFaults:
    def test_killed_worker_is_restarted_and_cell_survives(self, tmp_path):
        chaos_journal = tmp_path / "chaos.jsonl"
        clean_journal = tmp_path / "clean.jsonl"
        tracer = Tracer()
        result = Sweep("s", journal=chaos_journal, jobs=2,
                       real_chaos="kill(cell=2)", tracer=tracer).run(
            keys(6), ok_executor)
        assert all(record.ok for record in result)
        assert result.worker_restarts == 1
        assert result.completeness()["worker_restarts"] == 1
        assert tracer.spans_named("worker-restart")

        Sweep("s", journal=clean_journal).run(keys(6), ok_executor)
        assert chaos_journal.read_bytes() == clean_journal.read_bytes()

    def test_chaos_journals_byte_identical_across_worker_counts(
            self, tmp_path):
        journals = {}
        for jobs in (1, 2, 4):
            journals[jobs] = tmp_path / f"jobs{jobs}.jsonl"
            Sweep("s", journal=journals[jobs], jobs=jobs,
                  real_chaos="kill(cell=1); kill(cell=4)").run(
                keys(6), ok_executor)
        assert journals[2].read_bytes() == journals[1].read_bytes()
        assert journals[4].read_bytes() == journals[1].read_bytes()

    def test_poison_cell_is_quarantined_as_crashed(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        tracer = Tracer()
        result = Sweep("s", journal=journal, jobs=2, max_crashes=2,
                       real_chaos="kill(cell=1, times=99)",
                       tracer=tracer).run(keys(5), ok_executor)
        record = result.get(i=1)
        assert record.status == STATUS_CRASHED
        assert record.quarantined and record.attempts == 2
        assert "SIGKILL" in record.failure
        assert all(r.ok for r in result if r.key["i"] != 1)
        assert result.completeness()["statuses"]["crashed"] == 1
        assert tracer.spans_named("poison-quarantine")
        # The quarantine is durable: the journal line says crashed.
        lines = [json.loads(line) for line
                 in journal.read_text().splitlines()[1:]]
        assert [p["status"] for p in lines if p["key"]["i"] == 1] \
            == ["crashed"]

    def test_hung_cell_hits_the_wall_clock_deadline(self):
        result = Sweep("s", jobs=2, wall_deadline_s=1.0,
                       real_chaos="hang(cell=2, seconds=60)").run(
            keys(5), ok_executor)
        record = result.get(i=2)
        assert record.status == "timeout" and record.wall_clock
        assert "wall-clock" in record.failure
        assert record.to_dict()["wall_clock"] is True
        assert result.wall_timeouts == 1
        assert all(r.ok for r in result if r.key["i"] != 2)

    def test_memory_balloon_becomes_out_of_memory(self):
        result = Sweep("s", jobs=2, memory_limit_mb=192,
                       real_chaos="oom(cell=0, mb=2048)").run(
            keys(4), ok_executor)
        record = result.get(i=0)
        assert record.status == "out-of-memory"
        assert "address-space cap" in record.failure
        assert all(r.ok for r in result if r.key["i"] != 0)

    def test_resume_after_chaos_converges_to_clean_journal(self, tmp_path):
        chaos_journal = tmp_path / "chaos.jsonl"
        clean_journal = tmp_path / "clean.jsonl"
        Sweep("s", journal=chaos_journal, jobs=2, max_crashes=1,
              wall_deadline_s=1.0,
              real_chaos="kill(cell=1, times=99); "
                         "hang(cell=3, seconds=60)").run(
            keys(6), ok_executor)
        tracer = Tracer()
        resumed = Sweep("s", journal=chaos_journal, resume=True,
                        tracer=tracer).run(keys(6), ok_executor)
        assert all(record.ok for record in resumed)
        # Only the clean prefix (cell 0) replays; the crashed cell, the
        # hung cell and everything after the first fault re-execute.
        assert resumed.replayed == 1 and resumed.executed == 5
        assert len(tracer.spans_named("cell-refaulted")) == 2

        Sweep("s", journal=clean_journal).run(keys(6), ok_executor)
        assert chaos_journal.read_bytes() == clean_journal.read_bytes()

    def test_real_chaos_requires_valid_cells(self):
        with pytest.raises(SimulationError, match="cells 0..3"):
            Sweep("s", jobs=2, real_chaos="kill(cell=7)").run(
                keys(4), ok_executor)

    def test_supervision_knob_validation(self):
        with pytest.raises(ReproError, match="wall_deadline_s"):
            Sweep("s", wall_deadline_s=0)
        with pytest.raises(ReproError, match="max_crashes"):
            Sweep("s", max_crashes=0)
        with pytest.raises(ReproError, match="memory_limit_mb"):
            Sweep("s", memory_limit_mb=-1)
        with pytest.raises(SimulationError, match="RealFaultPlan"):
            Sweep("s", real_chaos=42)

    def test_supervised_routing(self):
        assert not Sweep("s").supervised()
        assert not Sweep("s", jobs=4).supervised()
        assert Sweep("s", wall_deadline_s=5).supervised()
        assert Sweep("s", memory_limit_mb=64).supervised()
        assert Sweep("s", real_chaos="kill(cell=0)").supervised()
        assert not Sweep("s", real_chaos="").supervised()

    def test_exit_code_mapping(self):
        from repro.cli import EXIT_INTERRUPTED, _exit_code_for

        assert EXIT_INTERRUPTED == 8
        error = SweepInterrupted(signal.SIGTERM, 3)
        assert _exit_code_for(error) == 8
        assert "SIGTERM" in str(error) and "--resume" in str(error)


# ---------------------------------------------------------------------------
# Subprocess durability: drain on SIGTERM, survive parent SIGKILL.
# ---------------------------------------------------------------------------

#: A sweep driver run as a child process. Its executor computes the
#: same records as :func:`ok_executor` (plus a real-time stall so the
#: test can interrupt mid-run), so journals written by the child and by
#: the in-process resume must be byte-identical.
_DRIVER = textwrap.dedent("""\
    import sys, time
    sys.path.insert(0, {src!r})
    from repro.errors import SweepInterrupted
    from repro.harness import Sweep

    def executor(key, budget_s=None):
        time.sleep(0.2)
        return {{"x": key["i"] * 10}}

    cells = [{{"i": i}} for i in range(8)]
    try:
        Sweep("s", journal={journal!r}, jobs={jobs},
              wall_deadline_s=30).run(cells, executor)
    except SweepInterrupted:
        sys.exit(8)
    sys.exit(0)
""")


def _stalling_executor(key, budget_s=None):
    time.sleep(0.2)
    return {"x": key["i"] * 10}


def _launch(journal, jobs):
    script = _DRIVER.format(src=SRC, journal=str(journal), jobs=jobs)
    return subprocess.Popen([sys.executable, "-c", script],
                            stdout=subprocess.PIPE,
                            stderr=subprocess.PIPE)


def _wait_for_records(journal, n, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if journal.exists() \
                and len(journal.read_text().splitlines()) >= 1 + n:
            return
        time.sleep(0.02)
    raise AssertionError(f"journal never reached {n} records")


class TestProcessDurability:
    def _clean_reference(self, tmp_path):
        reference = tmp_path / "reference.jsonl"
        Sweep("s", journal=reference).run(keys(8), _stalling_executor)
        return reference.read_bytes()

    def test_sigterm_drains_and_resume_finishes(self, tmp_path):
        journal = tmp_path / "drained.jsonl"
        child = _launch(journal, jobs=2)
        try:
            _wait_for_records(journal, 1)
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=30) == 8
        finally:
            if child.poll() is None:
                child.kill()
        # The drained journal is a valid prefix; resume finishes it.
        resumed = Sweep("s", journal=journal, resume=True).run(
            keys(8), _stalling_executor)
        assert all(record.ok for record in resumed)
        assert resumed.replayed >= 1
        assert journal.read_bytes() == self._clean_reference(tmp_path)

    @pytest.mark.parametrize("jobs", [1, 4])
    def test_sigkilled_parent_resumes_byte_identical(self, tmp_path, jobs):
        journal = tmp_path / "killed.jsonl"
        child = _launch(journal, jobs=jobs)
        try:
            _wait_for_records(journal, 2)
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
        resumed = Sweep("s", journal=journal, resume=True).run(
            keys(8), _stalling_executor)
        assert all(record.ok for record in resumed)
        assert resumed.replayed >= 2
        assert journal.read_bytes() == self._clean_reference(tmp_path)


def _pid_executor(key, budget_s=None):
    return {"pid": os.getpid()}


class TestSupervisorPoolReuse:
    """PR-9: one warm pool serves back-to-back sweeps (and the server)."""

    def test_back_to_back_sweeps_byte_identical_to_fresh_pools(
            self, tmp_path):
        from repro.harness import SupervisorPool

        fresh_a = tmp_path / "fresh_a.jsonl"
        fresh_b = tmp_path / "fresh_b.jsonl"
        Sweep("a", journal=fresh_a, jobs=2).run(keys(6), ok_executor)
        Sweep("b", journal=fresh_b, jobs=2).run(keys(4), ok_executor)

        warm_a = tmp_path / "warm_a.jsonl"
        warm_b = tmp_path / "warm_b.jsonl"
        pool = SupervisorPool(jobs=2).start()
        try:
            result_a = Sweep("a", journal=warm_a, pool=pool).run(
                keys(6), ok_executor)
            result_b = Sweep("b", journal=warm_b, pool=pool).run(
                keys(4), ok_executor)
        finally:
            pool.close()
        assert all(record.ok for record in result_a)
        assert all(record.ok for record in result_b)
        assert warm_a.read_bytes() == fresh_a.read_bytes()
        assert warm_b.read_bytes() == fresh_b.read_bytes()

    def test_workers_stay_warm_across_sweeps(self, tmp_path):
        from repro.harness import SupervisorPool

        pool = SupervisorPool(jobs=2).start()
        try:
            first = Sweep("p1", pool=pool).run(keys(4), _pid_executor)
            second = Sweep("p2", pool=pool).run(keys(4), _pid_executor)
        finally:
            pool.close()
        pids_first = {record.value["pid"] for record in first}
        pids_second = {record.value["pid"] for record in second}
        # The second sweep ran on the same worker processes: no forks
        # between runs.
        assert pids_second <= pids_first

    def test_submit_drain_close_lifecycle(self):
        from repro.harness import CellPolicy, SupervisorPool

        pool = SupervisorPool(jobs=2).start()
        tickets = [
            pool.submit({"i": i}, f"cell-{i}", ok_executor, CellPolicy(),
                        index=i)
            for i in range(5)
        ]
        assert pool.drain(timeout=30.0)
        cells = [ticket.wait(timeout=10.0) for ticket in tickets]
        assert [cell.index for cell in cells] == list(range(5))
        assert all(cell.record.ok for cell in cells)
        assert pool.outstanding() == 0
        pool.close()
        with pytest.raises(ReproError):
            pool.submit({"i": 9}, "late", ok_executor, CellPolicy())

    def test_per_task_wall_deadline_overrides_pool_default(self):
        from repro.harness import CellPolicy, SupervisorPool

        pool = SupervisorPool(jobs=1).start()
        try:
            ticket = pool.submit(
                {"i": 0}, "hung", _stalling_sleep_executor, CellPolicy(),
                wall_deadline_s=0.5)
            cell = ticket.wait(timeout=30.0)
            assert cell.record.status == "timeout"
            assert cell.record.wall_clock
            # The pool survives the kill: a follow-up task completes.
            follow = pool.submit({"i": 1}, "after", ok_executor,
                                 CellPolicy())
            assert follow.wait(timeout=30.0).record.ok
        finally:
            pool.close()


def _stalling_sleep_executor(key, budget_s=None):
    time.sleep(3600)
    return {"x": 0}
