"""Tests for CSR graph storage."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import CSRGraph, EdgeList

from .test_edgelist import edges_strategy


def paper_example_graph():
    """The 4-vertex digraph of the paper's Figure 2."""
    return CSRGraph.from_edges(
        EdgeList.from_pairs(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    )


class TestConstruction:
    def test_paper_example(self):
        graph = paper_example_graph()
        assert graph.num_vertices == 4
        assert graph.num_edges == 5
        np.testing.assert_array_equal(graph.neighbors(0), [1, 2])
        np.testing.assert_array_equal(graph.neighbors(1), [2, 3])
        np.testing.assert_array_equal(graph.neighbors(2), [3])
        np.testing.assert_array_equal(graph.neighbors(3), [])

    def test_neighbors_sorted(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, [(0, 3), (0, 1), (0, 2)]))
        np.testing.assert_array_equal(graph.neighbors(0), [1, 2, 3])

    def test_isolated_vertices(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(5, [(0, 4)]))
        assert graph.degree(1) == 0
        assert graph.degree(0) == 1

    def test_invalid_offsets_rejected(self):
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 2]), np.array([0, 1]))
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 2, 1]), np.array([0]))
        with pytest.raises(GraphFormatError):
            CSRGraph(2, np.array([0, 1, 2]), np.array([0, 5]))

    def test_weights_preserved_through_sort(self):
        edges = EdgeList(3, np.array([0, 0]), np.array([2, 1]),
                         weights=np.array([9.0, 4.0]))
        graph = CSRGraph.from_edges(edges)
        np.testing.assert_array_equal(graph.neighbors(0), [1, 2])
        np.testing.assert_array_equal(graph.neighbor_weights(0), [4.0, 9.0])

    def test_neighbor_weights_without_weights_raises(self):
        with pytest.raises(GraphFormatError):
            paper_example_graph().neighbor_weights(0)


class TestViews:
    def test_reverse_is_transpose(self):
        graph = paper_example_graph()
        rev = graph.reverse()
        np.testing.assert_array_equal(rev.neighbors(2), [0, 1])
        np.testing.assert_array_equal(rev.neighbors(3), [1, 2])
        np.testing.assert_array_equal(rev.neighbors(0), [])

    def test_reverse_cached(self):
        graph = paper_example_graph()
        assert graph.reverse() is graph.reverse()

    def test_sources_expansion(self):
        graph = paper_example_graph()
        np.testing.assert_array_equal(graph.sources(), [0, 0, 1, 1, 2])

    def test_has_edge(self):
        graph = paper_example_graph()
        assert graph.has_edge(0, 2)
        assert not graph.has_edge(2, 0)
        assert not graph.has_edge(3, 3)

    def test_degree_bounds(self):
        graph = paper_example_graph()
        with pytest.raises(IndexError):
            graph.neighbors(4)


@settings(max_examples=50, deadline=None)
@given(edges_strategy())
def test_round_trip_matches_adjacency_dict(data):
    n, pairs = data
    edges = EdgeList.from_pairs(n, pairs).deduplicate()
    graph = CSRGraph.from_edges(edges)
    adjacency = {}
    for u, v in edges.pairs():
        adjacency.setdefault(int(u), set()).add(int(v))
    assert graph.num_edges == edges.num_edges
    for v in range(n):
        np.testing.assert_array_equal(
            graph.neighbors(v), sorted(adjacency.get(v, ()))
        )


@settings(max_examples=50, deadline=None)
@given(edges_strategy())
def test_double_reverse_is_identity(data):
    n, pairs = data
    edges = EdgeList.from_pairs(n, pairs).deduplicate()
    graph = CSRGraph.from_edges(edges)
    back = graph.reverse().reverse()
    np.testing.assert_array_equal(back.offsets, graph.offsets)
    np.testing.assert_array_equal(back.targets, graph.targets)
