"""Tests for EdgeList preprocessing (paper Section 4.1.2 pipeline)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GraphFormatError
from repro.graph import EdgeList


def edges_strategy(max_vertices=30, max_edges=80):
    return st.integers(min_value=1, max_value=max_vertices).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=max_edges,
            ),
        )
    )


class TestConstruction:
    def test_from_pairs(self):
        edges = EdgeList.from_pairs(4, [(0, 1), (1, 2)])
        assert edges.num_edges == 2
        np.testing.assert_array_equal(edges.src, [0, 1])
        np.testing.assert_array_equal(edges.dst, [1, 2])

    def test_out_of_range_endpoint_raises(self):
        with pytest.raises(GraphFormatError):
            EdgeList.from_pairs(2, [(0, 2)])
        with pytest.raises(GraphFormatError):
            EdgeList(2, np.array([-1]), np.array([0]))

    def test_mismatched_arrays_raise(self):
        with pytest.raises(GraphFormatError):
            EdgeList(3, np.array([0, 1]), np.array([1]))

    def test_weights_must_align(self):
        with pytest.raises(GraphFormatError):
            EdgeList(3, np.array([0]), np.array([1]), weights=np.array([1.0, 2.0]))

    def test_empty_edge_list(self):
        edges = EdgeList.from_pairs(5, [])
        assert edges.num_edges == 0
        assert edges.deduplicate().num_edges == 0


class TestPreprocessing:
    def test_deduplicate(self):
        edges = EdgeList.from_pairs(3, [(0, 1), (0, 1), (1, 2), (0, 1)])
        deduped = edges.deduplicate()
        assert deduped.num_edges == 2
        assert set(map(tuple, deduped.pairs())) == {(0, 1), (1, 2)}

    def test_deduplicate_keeps_first_weight(self):
        edges = EdgeList(3, np.array([0, 0]), np.array([1, 1]),
                         weights=np.array([5.0, 9.0]))
        deduped = edges.deduplicate()
        assert deduped.num_edges == 1
        assert deduped.weights[0] == 5.0

    def test_drop_self_loops(self):
        edges = EdgeList.from_pairs(3, [(0, 0), (0, 1), (2, 2)])
        cleaned = edges.drop_self_loops()
        assert set(map(tuple, cleaned.pairs())) == {(0, 1)}

    def test_symmetrize(self):
        edges = EdgeList.from_pairs(3, [(0, 1), (1, 2)])
        sym = edges.symmetrize()
        assert set(map(tuple, sym.pairs())) == {(0, 1), (1, 0), (1, 2), (2, 1)}

    def test_symmetrize_idempotent_on_symmetric_input(self):
        edges = EdgeList.from_pairs(2, [(0, 1), (1, 0)])
        assert edges.symmetrize().num_edges == 2

    def test_orient_by_id_removes_cycles_and_loops(self):
        edges = EdgeList.from_pairs(3, [(1, 0), (0, 1), (2, 2), (1, 2)])
        oriented = edges.orient_by_id()
        pairs = set(map(tuple, oriented.pairs()))
        assert pairs == {(0, 1), (1, 2)}
        assert all(u < v for u, v in pairs)

    def test_relabel_compact(self):
        edges = EdgeList.from_pairs(10, [(2, 7), (7, 9)])
        compact, mapping = edges.relabel_compact()
        assert compact.num_vertices == 3
        np.testing.assert_array_equal(mapping, [2, 7, 9])
        assert set(map(tuple, compact.pairs())) == {(0, 1), (1, 2)}

    def test_permuted_preserves_multiset(self):
        rng = np.random.default_rng(3)
        edges = EdgeList.from_pairs(5, [(0, 1), (1, 2), (2, 3), (3, 4)])
        shuffled = edges.permuted(rng)
        assert sorted(map(tuple, shuffled.pairs())) == sorted(map(tuple, edges.pairs()))


class TestDegrees:
    def test_degrees(self):
        edges = EdgeList.from_pairs(3, [(0, 1), (0, 2), (1, 2)])
        np.testing.assert_array_equal(edges.out_degrees(), [2, 1, 0])
        np.testing.assert_array_equal(edges.in_degrees(), [0, 1, 2])


@settings(max_examples=50, deadline=None)
@given(edges_strategy())
def test_dedup_then_orient_invariants(data):
    n, pairs = data
    edges = EdgeList.from_pairs(n, pairs)
    oriented = edges.orient_by_id()
    # No duplicates, no self loops, all ascending.
    seen = set(map(tuple, oriented.pairs()))
    assert len(seen) == oriented.num_edges
    assert all(u < v for u, v in seen)
    # Orientation preserves the undirected edge set (minus loops).
    undirected = {(min(u, v), max(u, v)) for u, v in pairs if u != v}
    assert seen == undirected


@settings(max_examples=50, deadline=None)
@given(edges_strategy())
def test_symmetrize_invariants(data):
    n, pairs = data
    sym = EdgeList.from_pairs(n, pairs).symmetrize()
    pair_set = set(map(tuple, sym.pairs()))
    assert len(pair_set) == sym.num_edges
    for u, v in pair_set:
        assert (v, u) in pair_set
