"""Tests for the sensitivity module + simulator fuzz invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster, ComputeWork, paper_cluster
from repro.datagen import rmat_graph
from repro.harness.sensitivity import (
    crossover_scale,
    diminishing_returns,
    sweep,
)


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=97)


class TestSensitivity:
    def test_sweep_shape(self, graph_small):
        rows = sweep("pagerank", "native", graph_small, nodes=2,
                     knob="link", scales=(0.5, 1.0, 2.0),
                     scale_factor=1e4, iterations=2)
        assert [row["scale"] for row in rows] == [0.5, 1.0, 2.0]
        assert all(row["runtime_s"] > 0 for row in rows)

    def test_faster_link_never_hurts(self, graph_small):
        rows = sweep("pagerank", "graphlab", graph_small, nodes=4,
                     knob="link", scales=(0.5, 1.0, 4.0),
                     scale_factor=1e4, iterations=2)
        runtimes = [row["runtime_s"] for row in rows]
        assert runtimes == sorted(runtimes, reverse=True)

    def test_memory_knob_on_memory_bound(self, graph_small):
        rows = sweep("pagerank", "native", graph_small, nodes=1,
                     knob="memory", scales=(1.0, 2.0),
                     scale_factor=1e4, iterations=2)
        assert rows[1]["runtime_s"] < rows[0]["runtime_s"]

    def test_invalid_knob(self, graph_small):
        with pytest.raises(ValueError):
            sweep("pagerank", "native", graph_small, knob="disk")

    def test_crossover_detection(self):
        rows = [{"scale": 1, "bound_by": "network", "runtime_s": 4.0},
                {"scale": 2, "bound_by": "network", "runtime_s": 2.0},
                {"scale": 4, "bound_by": "memory", "runtime_s": 1.5}]
        assert crossover_scale(rows) == 4.0
        assert np.isnan(crossover_scale(rows[:2]))
        assert np.isnan(crossover_scale([]))

    def test_diminishing_returns(self):
        rows = [{"scale": 1, "runtime_s": 4.0},
                {"scale": 2, "runtime_s": 2.0},
                {"scale": 4, "runtime_s": 1.98}]
        assert diminishing_returns(rows, threshold=0.05) == 2.0


@settings(max_examples=25, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0, max_value=1e10),   # streamed bytes
            st.floats(min_value=0, max_value=1e10),   # random bytes
            st.floats(min_value=0, max_value=1e11),   # ops
            st.floats(min_value=0, max_value=1e8),    # traffic bytes
        ),
        min_size=1, max_size=8,
    ),
    st.integers(min_value=1, max_value=4),
)
def test_simulator_invariants_under_random_supersteps(steps, nodes):
    """Fuzz the simulator: metric identities hold for any step sequence."""
    cluster = Cluster(paper_cluster(nodes))
    for streamed, random, ops, traffic_bytes in steps:
        work = ComputeWork(streamed_bytes=streamed, random_bytes=random,
                           ops=ops)
        traffic = np.zeros((nodes, nodes))
        if nodes > 1:
            traffic[0, 1] = traffic_bytes
        cluster.superstep(work, traffic)
    metrics = cluster.metrics()

    # Total time equals the sum of recorded step durations.
    assert metrics.total_time_s == pytest.approx(
        sum(step.time_s for step in metrics.steps)
    )
    # Each step lasts at least as long as its slowest component.
    for step in metrics.steps:
        assert step.time_s >= max(step.compute_s, step.comm_s) - 1e-12
    # Byte accounting: total equals per-step sum; per-node mean scales.
    assert metrics.bytes_sent_total == pytest.approx(
        sum(step.bytes_sent for step in metrics.steps)
    )
    # Utilization and fractions stay in range.
    assert 0.0 <= metrics.cpu_utilization <= 1.0
    assert 0.0 <= metrics.network_fraction <= 1.0
    # The clock never runs backwards.
    assert cluster.elapsed_s == pytest.approx(metrics.total_time_s)
