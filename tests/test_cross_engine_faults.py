"""Cross-engine behaviour under one common fault schedule.

The study's frameworks split into two camps on fault tolerance, and the
split must be *behavioural*, not cosmetic: under the same seeded
schedule, every checkpointing engine converges to the exact fault-free
answers (recovery replays until the BSP step completes), and every
fail-fast engine surfaces the typed :class:`NodeFailure` — never a bare
exception — carrying the failing node and superstep. Transient-only
schedules must be survivable by *everyone*, costing time but never
answers.
"""

import numpy as np
import pytest

from repro.algorithms.registry import profile_for
from repro.datagen import rmat_graph
from repro.errors import NodeFailure, ReproError
from repro.harness import run_experiment

#: Engines that write checkpoints and survive the crash below.
CHECKPOINTING = ("giraph", "gps", "graphx")
#: Multi-node engines that die on node loss (galois is single-node
#: only, so it cannot even host a 4-node schedule).
FAIL_FAST = ("native", "combblas", "graphlab", "socialite",
             "socialite-published", "kdt")

#: One schedule for everyone: a mid-run crash, on top of message loss
#: and a latency spike.
CRASH_SCHEDULE = "crash(node=2, superstep=2); drop(p=0.01); " \
                 "latency(factor=4, at=1:3)"
#: No crashes: every engine must absorb these.
TRANSIENT_SCHEDULE = "drop(p=0.05); straggler(node=1, factor=3, at=0:2); " \
                     "latency(factor=4, at=1:2)"
SEED = 13


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=6, seed=83, directed=False)


def run(framework, graph, **kwargs):
    return run_experiment("pagerank", framework, graph, nodes=4,
                          iterations=4, **kwargs)


class TestCampMembership:
    @pytest.mark.parametrize("framework", CHECKPOINTING)
    def test_checkpointing_profiles(self, framework):
        assert profile_for(framework).fault_policy == "checkpoint"

    @pytest.mark.parametrize("framework", FAIL_FAST)
    def test_fail_fast_profiles(self, framework):
        assert profile_for(framework).fault_policy == "fail-fast"


class TestCheckpointingEnginesSurvive:
    @pytest.mark.parametrize("framework", CHECKPOINTING)
    def test_converges_to_fault_free_answers(self, framework, graph):
        clean = run(framework, graph)
        assert clean.ok, clean.failure
        chaos = run(framework, graph, faults=CRASH_SCHEDULE, fault_seed=SEED)
        assert chaos.ok, chaos.failure
        np.testing.assert_array_equal(chaos.result.values,
                                      clean.result.values)
        stats = chaos.recovery
        assert stats.crashes == 1 and stats.recoveries == 1
        assert stats.recovery_time_s > 0
        assert chaos.result.metrics.total_time_s \
            > clean.result.metrics.total_time_s

    @pytest.mark.parametrize("framework", CHECKPOINTING)
    def test_deterministic_across_two_runs(self, framework, graph):
        runs = [run(framework, graph, faults=CRASH_SCHEDULE, fault_seed=SEED)
                for _ in range(2)]
        assert runs[0].recovery.to_dict() == runs[1].recovery.to_dict()
        assert runs[0].result.metrics.total_time_s \
            == runs[1].result.metrics.total_time_s


class TestFailFastEnginesDieTyped:
    @pytest.mark.parametrize("framework", FAIL_FAST)
    def test_crash_raises_node_failure(self, framework, graph):
        with pytest.raises(NodeFailure) as excinfo:
            run(framework, graph, faults=CRASH_SCHEDULE, fault_seed=SEED)
        failure = excinfo.value
        # Typed, catchable as the repo-wide base error, and it names the
        # failing node and superstep.
        assert isinstance(failure, ReproError)
        assert failure.node == 2
        assert failure.superstep == 2
        assert "node 2" in str(failure)
        assert "superstep 2" in str(failure)


class TestTransientFaultsAreSurvivable:
    @pytest.mark.parametrize("framework", CHECKPOINTING + FAIL_FAST)
    def test_answers_unchanged_runtime_no_better(self, framework, graph):
        clean = run(framework, graph)
        assert clean.ok, clean.failure
        chaos = run(framework, graph, faults=TRANSIENT_SCHEDULE,
                    fault_seed=SEED)
        assert chaos.ok, chaos.failure
        np.testing.assert_array_equal(chaos.result.values,
                                      clean.result.values)
        assert chaos.recovery.crashes == 0
        assert chaos.result.metrics.total_time_s \
            >= clean.result.metrics.total_time_s
