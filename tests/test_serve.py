"""The serving layer: wire contract, admission, jobs, live server, drain.

Coverage map:

* ``TestApiParsing`` — the typed request parsers and error taxonomy
  (every rejection is a 400 ``ApiError`` before any work is admitted).
* ``TestAdmission`` — bounded queue, wall-deadline cap, memory budget,
  drain refusals; all against the controller alone.
* ``TestJobRegistry`` — journal-backed job state: restart recovery,
  stale-job folding, duplicate in-flight journal conflicts.
* ``TestLiveServer`` — a real :class:`ExperimentService` on an
  ephemeral port, driven through :class:`ServeClient`: routes, gate
  experiments with pinned-cache-hit accounting, synchronous sweeps,
  the concurrent duplicate-journal 409, and the NDJSON event stream.
* ``TestServeDrain`` — the ``repro serve`` subprocess: SIGTERM
  mid-sweep exits 8 and leaves the job resumable; a restarted server
  resumes it to a journal byte-identical to an uninterrupted run;
  idle SIGTERM exits 0.
"""

import asyncio
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.harness.sweep import Sweep
from repro.harness.tables import table5
from repro.serve import (
    STATE_DONE,
    STATE_INTERRUPTED,
    AdmissionController,
    AdmissionPolicy,
    ApiError,
    ExperimentService,
    JobConflict,
    JobRegistry,
    ServeClient,
)
from repro.serve.api import (
    parse_body,
    parse_experiment_request,
    parse_perf_request,
    parse_sweep_request,
)
from repro.serve.loadgen import build_plan

SRC = str(Path(__file__).resolve().parent.parent / "src")


def _raises_api(fn, *args, status=400, code=None):
    with pytest.raises(ApiError) as excinfo:
        fn(*args)
    assert excinfo.value.status == status
    if code is not None:
        assert excinfo.value.code == code
    return excinfo.value


class TestApiParsing:
    def test_body_must_be_a_json_object(self):
        assert parse_body(b"") == {}
        _raises_api(parse_body, b"not json")
        _raises_api(parse_body, b"[1, 2]")

    def test_experiment_needs_exactly_one_of_spec_or_gate(self):
        _raises_api(parse_experiment_request, {})
        _raises_api(parse_experiment_request, {
            "spec": {"algorithm": "bfs", "framework": "native",
                     "dataset": "rmat_mini"},
            "gate": {"algorithm": "bfs", "framework": "native"}})

    def test_gate_cell_is_validated(self):
        parsed = parse_experiment_request(
            {"gate": {"algorithm": "pagerank", "framework": "native"}})
        assert parsed["kind"] == "gate"
        assert parsed["gate"] == {"algorithm": "pagerank",
                                  "framework": "native", "nodes": 1}
        assert parsed["wait"] is True
        _raises_api(parse_experiment_request,
                    {"gate": {"algorithm": "nope", "framework": "native"}})
        _raises_api(parse_experiment_request,
                    {"gate": {"algorithm": "bfs", "framework": "nope"}})
        _raises_api(parse_experiment_request,
                    {"gate": {"algorithm": "bfs", "framework": "native",
                              "nodes": 0}})

    def test_spec_form_requires_catalog_dataset(self):
        parsed = parse_experiment_request(
            {"spec": {"algorithm": "bfs", "framework": "native",
                      "dataset": "rmat_mini"}})
        assert parsed["kind"] == "experiment"
        assert parsed["spec"]["dataset"] == "rmat_mini"
        _raises_api(parse_experiment_request,
                    {"spec": {"algorithm": "bfs", "framework": "nope",
                              "dataset": "rmat_mini"}})

    def test_sweep_request_validation(self):
        parsed = parse_sweep_request({"target": "table5"})
        assert parsed["wait"] is False       # sweeps are async by default
        assert parsed["max_retries"] == 2
        _raises_api(parse_sweep_request, {"target": "table99"})
        _raises_api(parse_sweep_request,
                    {"target": "table5", "max_retries": -1})

    def test_perf_request_validation(self):
        parsed = parse_perf_request({})
        assert parsed["framework"] == "native"
        assert parsed["node_counts"] == [1]
        _raises_api(parse_perf_request, {"framework": "nope"})
        _raises_api(parse_perf_request, {"node_counts": [0]})
        _raises_api(parse_perf_request, {"node_counts": "4"})

    def test_typed_fields_reject_wrong_types(self):
        _raises_api(parse_sweep_request,
                    {"target": "table5", "wait": "yes"})
        _raises_api(parse_sweep_request,
                    {"target": "table5", "algorithms": "pagerank"})

    def test_error_payload_shape(self):
        error = ApiError(409, "conflict", "busy", journal="/tmp/j.jsonl")
        assert error.payload() == {
            "error": "conflict", "message": "busy",
            "detail": {"journal": "/tmp/j.jsonl"}}


class TestAdmission:
    def test_bounded_queue_overflows_to_503(self):
        controller = AdmissionController(
            AdmissionPolicy(max_running=1, max_queue=0))
        slot = controller.admit(None, None)
        error = _raises_api(controller.admit, None, None,
                            status=503, code="overloaded")
        assert "queue" in str(error) or "capacity" in str(error)
        slot.release()
        controller.admit(None, None).release()
        assert controller.stats()["rejected"]["overloaded"] == 1

    def test_deadline_above_cap_is_a_400_timeout(self):
        controller = AdmissionController(AdmissionPolicy(max_deadline_s=10))
        _raises_api(controller.admit, 11, None, status=400, code="timeout")
        _raises_api(controller.admit, 0, None, status=400)
        controller.admit(10, None).release()

    def test_memory_budget(self):
        controller = AdmissionController(
            AdmissionPolicy(memory_budget_mb=100))
        # Can never fit: a 400, not a retryable 503.
        _raises_api(controller.admit, None, 101,
                    status=400, code="out-of-memory")
        held = controller.admit(None, 80)
        _raises_api(controller.admit, None, 40,
                    status=503, code="out-of-memory")
        held.release()
        controller.admit(None, 40).release()

    def test_draining_refuses_new_work(self):
        controller = AdmissionController()
        controller.start_drain()
        _raises_api(controller.admit, None, None,
                    status=503, code="overloaded")

    def test_slot_release_is_idempotent(self):
        controller = AdmissionController()
        with controller.admit(None, None) as slot:
            pass
        slot.release()
        assert controller.stats()["active"] == 0


class TestJobRegistry:
    def test_jobs_survive_a_registry_restart(self, tmp_path):
        registry = JobRegistry(tmp_path)
        job = registry.create("gate", {"algorithm": "bfs"})
        registry.transition(job, "running")
        registry.transition(job, STATE_DONE, result={"status": "ok"})
        registry.close()

        reloaded = JobRegistry(tmp_path)
        reloaded.load()
        copy = reloaded.get(job.id)
        assert copy.state == STATE_DONE
        assert copy.result == {"status": "ok"}
        assert copy.request == {"algorithm": "bfs"}
        reloaded.close()

    def test_stale_active_jobs_fold_to_interrupted(self, tmp_path):
        registry = JobRegistry(tmp_path)
        journal = tmp_path / "sweep.jsonl"
        job = registry.create("sweep", {"target": "table5"},
                              journal=journal)
        registry.transition(job, "running")
        registry.close()                      # process "dies" mid-run

        reloaded = JobRegistry(tmp_path)
        reloaded.load()
        copy = reloaded.get(job.id)
        assert copy.state == STATE_INTERRUPTED
        assert copy.error["code"] == "interrupted"
        assert [stale.id for stale in reloaded.resumable_sweeps()] \
            == [job.id]
        reloaded.close()

    def test_duplicate_in_flight_journal_conflicts(self, tmp_path):
        registry = JobRegistry(tmp_path)
        journal = tmp_path / "shared.jsonl"
        first = registry.create("sweep", {}, journal=journal)
        with pytest.raises(JobConflict) as excinfo:
            registry.create("sweep", {}, journal=journal)
        assert excinfo.value.holder == first.id
        # A terminal transition frees the path for the next submission.
        registry.transition(first, STATE_DONE, result={})
        registry.create("sweep", {}, journal=journal)
        registry.close()

    def test_new_ids_continue_past_recovered_ones(self, tmp_path):
        registry = JobRegistry(tmp_path)
        first = registry.create("gate", {})
        registry.close()
        reloaded = JobRegistry(tmp_path)
        reloaded.load()
        assert reloaded.create("gate", {}).id > first.id
        reloaded.close()


# ---------------------------------------------------------------------------
# Live in-process server
# ---------------------------------------------------------------------------


class _LiveServer:
    """An :class:`ExperimentService` on port 0 in a daemon thread."""

    def __init__(self, state_dir, **kwargs):
        kwargs.setdefault("jobs", 1)
        kwargs.setdefault("warm_node_counts", (1,))
        self.service = ExperimentService(port=0, state_dir=state_dir,
                                         **kwargs)
        self.ready = threading.Event()
        self.exit_code = None
        self.service.on_ready = lambda _host, _port: self.ready.set()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = asyncio.run(self.service.run())

    def __enter__(self):
        self.thread.start()
        assert self.ready.wait(timeout=60), "server did not come up"
        return self

    def __exit__(self, *exc):
        if self.thread.is_alive():
            self.service._loop.call_soon_threadsafe(
                self.service._initiate_drain, int(signal.SIGTERM))
            self.thread.join(timeout=60)
        assert not self.thread.is_alive(), "server did not drain"

    def call(self, method, path, body=None):
        async def _one():
            client = ServeClient(self.service.host, self.service.port,
                                 timeout_s=60)
            try:
                return await client.request(method, path, body)
            finally:
                await client.close()

        return asyncio.run(_one())


@pytest.fixture(scope="class")
def server(request, tmp_path_factory):
    with _LiveServer(tmp_path_factory.mktemp("serve-state")) as live:
        request.cls.server = live
        yield live


@pytest.mark.usefixtures("server")
class TestLiveServer:
    def test_healthz_and_stats(self):
        status, health = self.server.call("GET", "/healthz")
        assert (status, health["status"]) == (200, "ok")
        status, stats = self.server.call("GET", "/stats")
        assert status == 200
        # Warm-up pinned the nodes=1 weak-scaling datasets before the
        # pool forked; the pins (and their keys) are visible here.
        assert stats["cache"]["pinned"]
        assert stats["cache"]["warmed"]
        assert stats["pool"]["jobs"] == 1

    def test_gate_experiment_hits_the_pinned_cache(self):
        before = self.server.call("GET", "/stats")[1]["cache"]["hits"]
        status, job = self.server.call("POST", "/experiments", {
            "gate": {"algorithm": "pagerank", "framework": "native",
                     "nodes": 1}})
        assert status == 200
        assert job["state"] == STATE_DONE
        assert job["result"]["status"] == "ok"
        assert job["result"]["value"]["runtime_s"] > 0
        after = self.server.call("GET", "/stats")[1]["cache"]["hits"]
        # The worker's dataset-cache-hit tracer instant (pinned=True)
        # travelled back in the cell spans and was counted.
        assert after["pinned"] > before["pinned"]

    def test_spec_experiment_and_perf_analyze(self):
        status, job = self.server.call("POST", "/experiments", {
            "spec": {"algorithm": "bfs", "framework": "native",
                     "dataset": "rmat_mini"}})
        assert status == 200 and job["result"]["status"] == "ok"
        status, job = self.server.call("POST", "/perf/analyze", {
            "framework": "giraph", "algorithms": ["pagerank"],
            "node_counts": [1]})
        assert status == 200 and job["state"] == STATE_DONE
        assert job["result"]["value"]["attributions"]

    def test_dnf_outcome_is_a_result_not_an_error(self):
        status, job = self.server.call("POST", "/experiments", {
            "spec": {"algorithm": "pagerank", "framework": "giraph",
                     "dataset": "rmat_mini", "deadline_s": 1e-9}})
        assert status == 200
        assert job["state"] == STATE_DONE
        assert job["result"]["status"] == "timeout"

    def test_synchronous_sweep_completes(self):
        status, job = self.server.call("POST", "/sweeps", {
            "target": "table5", "algorithms": ["pagerank"],
            "frameworks": ["native"], "wait": True})
        assert status == 200
        assert job["state"] == STATE_DONE
        report = job["result"]["completeness"]
        assert report["coverage"] == 1.0
        status, fetched = self.server.call("GET", f"/jobs/{job['job']}")
        assert status == 200 and fetched["state"] == STATE_DONE

    def test_sweeps_with_algorithms_on_figure5_are_rejected(self):
        status, payload = self.server.call("POST", "/sweeps", {
            "target": "figure5", "algorithms": ["pagerank"]})
        assert (status, payload["error"]) == (400, "bad-request")

    def test_concurrent_duplicate_journal_is_a_409(self, tmp_path):
        journal = str(tmp_path / "dup.jsonl")
        body = {"target": "table5", "algorithms": ["bfs"],
                "frameworks": ["native"], "journal": journal,
                "wait": False}

        async def _both():
            first = ServeClient(self.server.service.host,
                                self.server.service.port, timeout_s=60)
            second = ServeClient(self.server.service.host,
                                 self.server.service.port, timeout_s=60)
            try:
                return await asyncio.gather(
                    first.request("POST", "/sweeps", body),
                    second.request("POST", "/sweeps", body))
            finally:
                await first.close()
                await second.close()

        outcomes = sorted(asyncio.run(_both()), key=lambda out: out[0])
        assert [status for status, _ in outcomes] == [202, 409]
        accepted, refused = outcomes[0][1], outcomes[1][1]
        assert refused["error"] == "conflict"
        assert refused["detail"]["holder"] == accepted["job"]
        # The winner still runs to completion.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            _status, job = self.server.call("GET",
                                            f"/jobs/{accepted['job']}")
            if job["state"] == STATE_DONE:
                break
            time.sleep(0.05)
        assert job["state"] == STATE_DONE

    def test_event_stream_replays_history_and_follows(self):
        status, job = self.server.call("POST", "/sweeps", {
            "target": "table5", "algorithms": ["wcc"],
            "frameworks": ["native"], "wait": True})
        assert status == 200

        async def _collect():
            client = ServeClient(self.server.service.host,
                                 self.server.service.port, timeout_s=60)
            try:
                return [event async for event
                        in client.stream_events(job["job"])]
            finally:
                await client.close()

        events = asyncio.run(_collect())
        assert any(event.get("event") == "cell" for event in events)
        assert events[-1]["state"] == STATE_DONE

    def test_unknown_routes_and_methods(self):
        assert self.server.call("GET", "/nope")[0] == 404
        assert self.server.call("DELETE", "/stats")[0] == 405
        assert self.server.call("GET", "/jobs/job-999999")[0] == 404
        status, payload = self.server.call("POST", "/experiments",
                                           {"gate": {"algorithm": "bfs"}})
        assert (status, payload["error"]) == (400, "bad-request")

    def test_loadgen_plan_is_deterministic(self):
        assert build_plan(3, 40) == build_plan(3, 40)
        assert build_plan(3, 40) != build_plan(4, 40)
        kinds = {kind for kind, _path, _body in build_plan(0, 200)}
        assert kinds == {"gate", "perf-analyze", "sweep"}


class TestLiveServerAdmission:
    def test_overloaded_and_draining_rejections_over_http(self, tmp_path):
        policy = AdmissionPolicy(max_running=1, max_queue=0)
        with _LiveServer(tmp_path / "state", policy=policy,
                         warm=False) as live:
            status, job = live.call("POST", "/sweeps", {
                "target": "table5", "wait": False})
            assert status == 202
            status, payload = live.call("POST", "/experiments", {
                "gate": {"algorithm": "bfs", "framework": "native"}})
            assert (status, payload["error"]) == (503, "overloaded")
            live.service._loop.call_soon_threadsafe(
                live.service._initiate_drain, int(signal.SIGTERM))
            live.thread.join(timeout=60)
            # Drain interrupted the running sweep: exit code 8, and the
            # journal-backed job is marked resumable for the restart.
            assert live.exit_code == 8
        registry = JobRegistry(tmp_path / "state")
        registry.load()
        assert [stale.id for stale in registry.resumable_sweeps()] \
            == [job["job"]]
        registry.close()


# ---------------------------------------------------------------------------
# Subprocess drain + resume (the satellite-3 contract)
# ---------------------------------------------------------------------------


def _spawn_server(state_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    child = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--jobs", "1", "--state-dir", str(state_dir)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True)
    announce = child.stdout.readline()
    assert "repro-serve listening" in announce, announce
    port = int(announce.split("http://", 1)[1].split(" ")[0]
               .rsplit(":", 1)[1])
    return child, port


def _call(port, method, path, body=None):
    async def _one():
        client = ServeClient("127.0.0.1", port, timeout_s=60)
        try:
            return await client.request(method, path, body)
        finally:
            await client.close()

    return asyncio.run(_one())


def _wait_for_state(port, job_id, states, timeout_s=120.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        status, job = _call(port, "GET", f"/jobs/{job_id}")
        assert status == 200
        if job["state"] in states:
            return job
        time.sleep(0.1)
    raise AssertionError(f"job {job_id} never reached {states}")


_SWEEP = {"target": "table5", "wait": False}      # full table5: ~100 cells


class TestServeDrain:
    def test_idle_sigterm_drains_clean(self, tmp_path):
        child, _port = _spawn_server(tmp_path / "state")
        try:
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=60) == 0
        finally:
            if child.poll() is None:
                child.kill()

    def test_sigterm_mid_sweep_exits_8_and_restart_resumes(self, tmp_path):
        state = tmp_path / "state"
        child, port = _spawn_server(state)
        try:
            status, job = _call(port, "POST", "/sweeps", dict(_SWEEP))
            assert status == 202
            journal = Path(job["journal"])
            # Let a prefix of cells land in the journal, then SIGTERM.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if journal.exists() \
                        and len(journal.read_text().splitlines()) >= 3:
                    break
                time.sleep(0.05)
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=60) == 8
        finally:
            if child.poll() is None:
                child.kill()
        interrupted = journal.read_bytes()
        assert interrupted                       # a non-empty prefix

        # The restarted server reports the job interrupted and resumes
        # it automatically; the finished journal must be byte-identical
        # to an uninterrupted in-process run of the same sweep.
        child, port = _spawn_server(state)
        try:
            job = _wait_for_state(port, job["job"],
                                  (STATE_DONE, STATE_INTERRUPTED))
            resumed_id = None
            for entry in _call(port, "GET", "/jobs")[1]["jobs"]:
                if entry["request"].get("resumed_from") == job["job"]:
                    resumed_id = entry["job"]
            assert job["state"] == STATE_INTERRUPTED
            assert resumed_id is not None
            finished = _wait_for_state(port, resumed_id, (STATE_DONE,))
            # Full table5 legitimately contains DNF cells (coverage
            # < 1); completeness means every cell was accounted for.
            report = finished["result"]["completeness"]
            assert report["executed"] + report["replayed"] \
                == report["cells"]
            assert not report["quarantined"]
            assert finished["result"]["data"]
            child.send_signal(signal.SIGTERM)
            assert child.wait(timeout=60) == 0
        finally:
            if child.poll() is None:
                child.kill()

        reference = tmp_path / "reference.jsonl"
        table5(sweep=Sweep("table5", journal=reference))
        assert journal.read_bytes() == reference.read_bytes()
        assert len(journal.read_bytes()) > len(interrupted)
