"""Smoke tests: the fast example scripts must run clean end-to-end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

#: The examples quick enough for the unit suite; the longer sweeps
#: (shootout, weak_scaling, paper_tour, bottleneck_analysis) are
#: exercised by the benchmark suite's equivalent regenerations.
FAST_EXAMPLES = ("quickstart.py", "custom_vertex_program.py",
                 "network_tuning.py")


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True, text=True, timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_quickstart_output_contains_verdict():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=240,
    )
    assert "identical PageRank vectors" in result.stdout
    assert "slower than native" in result.stdout


def test_all_examples_exist_and_have_docstrings():
    scripts = sorted(EXAMPLES.glob("*.py"))
    assert len(scripts) >= 8
    for script in scripts:
        text = script.read_text()
        assert text.startswith('"""'), script.name
        assert "__main__" in text, script.name
