"""Tests for the golden reference algorithms."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED,
    bfs_reference,
    pagerank_matrix_form,
    pagerank_reference,
    per_vertex_triangles,
    regularized_loss,
    rmse,
    triangle_count_reference,
    validate_distances,
)
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.errors import GraphFormatError
from repro.graph import CSRGraph, EdgeList, RatingsMatrix


def paper_figure2_graph():
    return CSRGraph.from_edges(
        EdgeList.from_pairs(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    )


class TestPageRankReference:
    def test_one_iteration_by_hand(self):
        # Figure 2 graph, all ranks 1, r=0.3:
        # PR(0)=0.3; PR(1)=0.3+0.7*(1/2)=0.65;
        # PR(2)=0.3+0.7*(1/2+1/2)=1.0; PR(3)=0.3+0.7*(1/2+1/1)=1.35.
        ranks = pagerank_reference(paper_figure2_graph(), iterations=1)
        np.testing.assert_allclose(ranks, [0.3, 0.65, 1.0, 1.35])

    def test_matches_matrix_form(self):
        graph = rmat_graph(scale=7, edge_factor=6, seed=11)
        fast = pagerank_reference(graph, iterations=8)
        dense = pagerank_matrix_form(graph, iterations=8)
        np.testing.assert_allclose(fast, dense, rtol=1e-10)

    def test_zero_iterations_is_initial(self):
        ranks = pagerank_reference(paper_figure2_graph(), iterations=0)
        np.testing.assert_array_equal(ranks, np.ones(4))

    def test_dangling_vertices_contribute_nothing(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, [(0, 1)]))
        ranks = pagerank_reference(graph, iterations=1)
        # Vertex 2 is isolated: rank = r.
        assert ranks[2] == pytest.approx(0.3)

    def test_matrix_form_rejects_large(self):
        with pytest.raises(ValueError):
            pagerank_matrix_form(rmat_graph(scale=13, edge_factor=2))


class TestBFSReference:
    def test_line_graph(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)]).symmetrize()
        )
        np.testing.assert_array_equal(bfs_reference(graph, 0), [0, 1, 2, 3])

    def test_unreachable(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, [(0, 1), (1, 0)]))
        distances = bfs_reference(graph, 0)
        assert distances[2] == UNREACHED

    def test_source_validation(self):
        with pytest.raises(ValueError):
            bfs_reference(paper_figure2_graph(), source=10)

    def test_validate_distances_accepts_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=3, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        distances = bfs_reference(graph, source)
        assert validate_distances(graph, source, distances)

    def test_validate_distances_rejects_corruption(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=3, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        distances = bfs_reference(graph, source).copy()
        reached = np.nonzero((distances > 0) & (distances != UNREACHED))[0]
        distances[reached[0]] += 5
        assert not validate_distances(graph, source, distances)


class TestTriangleReference:
    def test_known_counts(self):
        # K4 has 4 triangles.
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, pairs))
        assert triangle_count_reference(graph) == 4

    def test_triangle_free(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(6, [(0, 3), (1, 4), (2, 5)])
        )
        assert triangle_count_reference(graph) == 0

    def test_requires_orientation(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(3, [(0, 1), (1, 0), (1, 2), (0, 2)])
        )
        with pytest.raises(GraphFormatError):
            triangle_count_reference(graph)

    def test_per_vertex_sums_to_total(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=4)
        assert per_vertex_triangles(graph).sum() == \
            triangle_count_reference(graph)


class TestCFOracles:
    def test_perfect_factors_zero_rmse(self):
        p = np.array([[1.0, 0.0], [0.0, 1.0]])
        q = np.array([[2.0, 0.0], [0.0, 3.0]])
        ratings = RatingsMatrix(2, 2, [0, 1], [0, 1], [2.0, 3.0])
        assert rmse(ratings, p, q) == pytest.approx(0.0)

    def test_loss_includes_regularization(self):
        p = np.ones((1, 2))
        q = np.ones((1, 2))
        ratings = RatingsMatrix(1, 1, [0], [0], [2.0])
        # residual 0; reg = 0.05*2 + 0.05*2 = 0.2
        assert regularized_loss(ratings, p, q) == pytest.approx(0.2)
