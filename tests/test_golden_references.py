"""Tests for the golden reference algorithms."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED,
    bfs_reference,
    pagerank_matrix_form,
    pagerank_reference,
    per_vertex_triangles,
    regularized_loss,
    rmse,
    triangle_count_reference,
    validate_distances,
)
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.errors import GraphFormatError
from repro.graph import CSRGraph, EdgeList, RatingsMatrix


def paper_figure2_graph():
    return CSRGraph.from_edges(
        EdgeList.from_pairs(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    )


class TestPageRankReference:
    def test_one_iteration_by_hand(self):
        # Figure 2 graph, all ranks 1, r=0.3:
        # PR(0)=0.3; PR(1)=0.3+0.7*(1/2)=0.65;
        # PR(2)=0.3+0.7*(1/2+1/2)=1.0; PR(3)=0.3+0.7*(1/2+1/1)=1.35.
        ranks = pagerank_reference(paper_figure2_graph(), iterations=1)
        np.testing.assert_allclose(ranks, [0.3, 0.65, 1.0, 1.35])

    def test_matches_matrix_form(self):
        graph = rmat_graph(scale=7, edge_factor=6, seed=11)
        fast = pagerank_reference(graph, iterations=8)
        dense = pagerank_matrix_form(graph, iterations=8)
        np.testing.assert_allclose(fast, dense, rtol=1e-10)

    def test_zero_iterations_is_initial(self):
        ranks = pagerank_reference(paper_figure2_graph(), iterations=0)
        np.testing.assert_array_equal(ranks, np.ones(4))

    def test_dangling_vertices_contribute_nothing(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, [(0, 1)]))
        ranks = pagerank_reference(graph, iterations=1)
        # Vertex 2 is isolated: rank = r.
        assert ranks[2] == pytest.approx(0.3)

    def test_matrix_form_rejects_large(self):
        with pytest.raises(ValueError):
            pagerank_matrix_form(rmat_graph(scale=13, edge_factor=2))


class TestBFSReference:
    def test_line_graph(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)]).symmetrize()
        )
        np.testing.assert_array_equal(bfs_reference(graph, 0), [0, 1, 2, 3])

    def test_unreachable(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, [(0, 1), (1, 0)]))
        distances = bfs_reference(graph, 0)
        assert distances[2] == UNREACHED

    def test_source_validation(self):
        with pytest.raises(ValueError):
            bfs_reference(paper_figure2_graph(), source=10)

    def test_validate_distances_accepts_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=3, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        distances = bfs_reference(graph, source)
        assert validate_distances(graph, source, distances)

    def test_validate_distances_rejects_corruption(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=3, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        distances = bfs_reference(graph, source).copy()
        reached = np.nonzero((distances > 0) & (distances != UNREACHED))[0]
        distances[reached[0]] += 5
        assert not validate_distances(graph, source, distances)


class TestTriangleReference:
    def test_known_counts(self):
        # K4 has 4 triangles.
        pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)]
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, pairs))
        assert triangle_count_reference(graph) == 4

    def test_triangle_free(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(6, [(0, 3), (1, 4), (2, 5)])
        )
        assert triangle_count_reference(graph) == 0

    def test_requires_orientation(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(3, [(0, 1), (1, 0), (1, 2), (0, 2)])
        )
        with pytest.raises(GraphFormatError):
            triangle_count_reference(graph)

    def test_per_vertex_sums_to_total(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=4)
        assert per_vertex_triangles(graph).sum() == \
            triangle_count_reference(graph)


class TestCFOracles:
    def test_perfect_factors_zero_rmse(self):
        p = np.array([[1.0, 0.0], [0.0, 1.0]])
        q = np.array([[2.0, 0.0], [0.0, 3.0]])
        ratings = RatingsMatrix(2, 2, [0, 1], [0, 1], [2.0, 3.0])
        assert rmse(ratings, p, q) == pytest.approx(0.0)

    def test_loss_includes_regularization(self):
        p = np.ones((1, 2))
        q = np.ones((1, 2))
        ratings = RatingsMatrix(1, 1, [0], [0], [2.0])
        # residual 0; reg = 0.05*2 + 0.05*2 = 0.2
        assert regularized_loss(ratings, p, q) == pytest.approx(0.2)


# ---------------------------------------------------------------------------
# Second-generation workloads: WCC, SSSP, k-core, label propagation.
# ---------------------------------------------------------------------------

from repro.algorithms import (  # noqa: E402
    UNREACHED_DIST,
    edge_weights_for,
    initial_labels,
    kcore_reference,
    label_propagation_reference,
    lp_step_reference,
    sssp_reference,
    validate_components,
    validate_kcore,
    validate_sssp,
    wcc_reference,
)


def line_graph(n=4):
    pairs = [(i, i + 1) for i in range(n - 1)]
    return CSRGraph.from_edges(EdgeList.from_pairs(n, pairs).symmetrize())


class TestWCCReference:
    def test_two_components(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(5, [(0, 1), (1, 2), (3, 4)]).symmetrize()
        )
        np.testing.assert_array_equal(wcc_reference(graph), [0, 0, 0, 3, 3])

    def test_isolated_vertices_are_their_own_component(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, []))
        np.testing.assert_array_equal(wcc_reference(graph), [0, 1, 2])

    def test_validate_accepts_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=5, directed=False)
        assert validate_components(graph, wcc_reference(graph))

    def test_validate_rejects_split_component(self):
        graph = line_graph(4)
        labels = wcc_reference(graph).copy()
        labels[3] = 3
        assert not validate_components(graph, labels)


class TestSSSPReference:
    def test_line_graph_distances_sum_weights(self):
        graph = line_graph(4)
        weights = edge_weights_for(graph)
        distances = sssp_reference(graph, source=0)
        assert distances[0] == 0.0
        # Each hop adds that edge's hash weight exactly.
        total = 0.0
        for u in range(3):
            row = slice(graph.offsets[u], graph.offsets[u + 1])
            step = weights[row][graph.targets[row] == u + 1][0]
            total += step
            assert distances[u + 1] == pytest.approx(total)

    def test_unreachable_is_inf(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(3, [(0, 1), (1, 0)])
        )
        assert sssp_reference(graph, 0)[2] == UNREACHED_DIST

    def test_weights_are_symmetric_small_integers(self):
        graph = rmat_graph(scale=7, edge_factor=6, seed=6, directed=False)
        weights = edge_weights_for(graph)
        assert weights.min() >= 1.0 and weights.max() <= 8.0
        assert np.all(weights == np.rint(weights))
        # The hash is on the unordered endpoint pair: (u,v) == (v,u).
        lookup = {}
        for e, (u, v) in enumerate(zip(graph.sources().tolist(),
                                       graph.targets.tolist())):
            lookup[(u, v)] = weights[e]
        for (u, v), w in lookup.items():
            if (v, u) in lookup:
                assert lookup[(v, u)] == w

    def test_validate_accepts_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=7, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        assert validate_sssp(graph, source, sssp_reference(graph, source))

    def test_source_validation(self):
        with pytest.raises(ValueError):
            sssp_reference(line_graph(3), source=99)


class TestKCoreReference:
    def test_k4_is_3_core(self):
        pairs = [(i, j) for i in range(4) for j in range(4) if i != j]
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, pairs))
        np.testing.assert_array_equal(kcore_reference(graph), [3, 3, 3, 3])

    def test_line_graph_is_1_core(self):
        core = kcore_reference(line_graph(5))
        np.testing.assert_array_equal(core, np.ones(5, dtype=np.int64))

    def test_isolated_vertex_is_0_core(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (1, 2), (0, 2)]).symmetrize()
        )
        core = kcore_reference(graph)
        assert core[3] == 0 and core[:3].max() == 2

    def test_validate_accepts_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=8, directed=False)
        assert validate_kcore(graph, kcore_reference(graph))


class TestLabelPropagationReference:
    def test_initial_labels_is_seeded_permutation(self):
        labels = initial_labels(16, seed=0)
        np.testing.assert_array_equal(np.sort(labels), np.arange(16))
        np.testing.assert_array_equal(labels, initial_labels(16, seed=0))
        assert not np.array_equal(labels, initial_labels(16, seed=1))

    def test_one_round_adopts_most_frequent(self):
        # Star: center 0 with leaves 1..3; labels forced by hand.
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (0, 2), (0, 3)]).symmetrize()
        )
        labels = np.array([9, 5, 5, 7], dtype=np.int64)
        new = lp_step_reference(graph, labels)
        assert new[0] == 5          # two 5s beat one 7
        assert set(new[1:]) == {9}  # leaves see only the center

    def test_tie_breaks_toward_min_label(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(3, [(0, 2), (1, 2)])
        )
        labels = np.array([4, 2, 0], dtype=np.int64)
        assert lp_step_reference(graph, labels)[2] == 2

    def test_isolated_vertex_keeps_label(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(2, []))
        labels = label_propagation_reference(graph, iterations=3, seed=0)
        np.testing.assert_array_equal(np.sort(labels), [0, 1])


class TestFrozenSecondGenOutputs:
    """Frozen digests of the references on small catalog proxies.

    Any change to the datasets, the weight hash, the seeded labels, or
    the reference algorithms shows up here as a digest mismatch — the
    cross-engine differential tests then pin every engine to the same
    (frozen) answer.
    """

    # (dataset, algorithm) -> (sha256[:16] of the value bytes, invariant)
    FROZEN = {
        ("rmat_mini", "wcc"): ("051e370bd99ff7be", 228),
        ("rmat_mini", "sssp"): ("87bb2e8dbe0846be", 795),
        ("rmat_mini", "k_core"): ("73e7319311df54e3", 26),
        ("rmat_mini", "label_propagation"): ("39c9e4ea70a976c0", 242),
        ("facebook", "wcc"): ("79f5c0c0bc64caff", 1803),
        ("facebook", "sssp"): ("ea90edb91d6768d9", 6389),
        ("facebook", "k_core"): ("1106269cb8aaaa22", 78),
        ("facebook", "label_propagation"): ("476fce76a13f9847", 1884),
    }

    @staticmethod
    def _digest(values):
        import hashlib

        return hashlib.sha256(
            np.ascontiguousarray(values).tobytes()).hexdigest()[:16]

    @pytest.mark.parametrize("dataset,algorithm", sorted(FROZEN),
                             ids=lambda value: str(value))
    def test_frozen_digest(self, dataset, algorithm):
        from repro.harness.datasets import single_node_graph

        graph = single_node_graph(dataset, algorithm)
        if algorithm == "wcc":
            values = wcc_reference(graph)
            invariant = int(np.unique(values).size)
        elif algorithm == "sssp":
            source = int(np.argmax(graph.out_degrees()))
            values = sssp_reference(graph, source=source)
            invariant = int(np.isfinite(values).sum())
        elif algorithm == "k_core":
            values = kcore_reference(graph)
            invariant = int(values.max())
        else:
            values = label_propagation_reference(graph, iterations=3, seed=0)
            invariant = int(np.unique(values).size)
        digest, expected_invariant = self.FROZEN[(dataset, algorithm)]
        assert self._digest(values) == digest
        assert invariant == expected_invariant
