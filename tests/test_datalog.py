"""Tests for the Datalog engine and SociaLite front-end."""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.errors import ReproError
from repro.frameworks.datalog import (
    AggregateTable,
    Assign,
    Atom,
    Head,
    Rule,
    SocialiteEngine,
    TupleTable,
    Var,
    socialite,
)


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=41)


@pytest.fixture(scope="module")
def graph_small_undirected():
    return rmat_graph(scale=9, edge_factor=6, seed=41, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=8, edge_factor=6, seed=42)


def make_cluster(nodes=1, **kwargs):
    return Cluster(paper_cluster(nodes), **kwargs)


class TestTables:
    def test_tuple_table_basics(self):
        table = TupleTable("edge", [np.array([0, 1, 0]), np.array([1, 2, 2])],
                           num_shards=2, key_universe=3)
        assert table.arity == 2
        assert table.num_rows == 3
        assert table.rows_per_shard().sum() == 3

    def test_ragged_columns_rejected(self):
        with pytest.raises(ReproError):
            TupleTable("bad", [np.array([0, 1]), np.array([1])])

    def test_tail_nested_lookup(self):
        table = TupleTable("edge", [np.array([2, 0, 0]), np.array([5, 1, 3])],
                           key_universe=3, tail_nested=True)
        rows, counts = table.lookup(np.array([0, 1, 2]))
        np.testing.assert_array_equal(counts, [2, 0, 1])
        np.testing.assert_array_equal(table.columns[1][rows], [1, 3, 5])

    def test_lookup_requires_tail_nesting(self):
        table = TupleTable("edge", [np.array([0]), np.array([1])])
        with pytest.raises(ReproError):
            table.lookup(np.array([0]))

    def test_aggregate_sum(self):
        table = AggregateTable("rank", 4, "sum")
        changed = table.combine(np.array([1, 1, 2]), np.array([1.0, 2.0, 5.0]))
        np.testing.assert_array_equal(changed, [1, 2])
        assert table.values[1] == 3.0

    def test_aggregate_min_monotone(self):
        table = AggregateTable("bfs", 4, "min")
        table.combine(np.array([1]), np.array([5.0]))
        changed = table.combine(np.array([1, 1]), np.array([7.0, 3.0]))
        np.testing.assert_array_equal(changed, [1])
        assert table.values[1] == 3.0
        # No improvement -> no change reported.
        assert table.combine(np.array([1]), np.array([9.0])).size == 0

    def test_aggregate_count(self):
        table = AggregateTable("tri", 1, "count")
        table.combine(np.zeros(5, dtype=np.int64), np.ones(5))
        assert table.values[0] == 5.0

    def test_unknown_agg_rejected(self):
        with pytest.raises(ReproError):
            AggregateTable("x", 4, "max")


class TestRuleEvaluation:
    def test_two_way_join(self):
        # path(z, $SUM(1)) :- start(x, v), edge(x, z): count paths from
        # defined starts.
        engine = SocialiteEngine(num_shards=1, vertex_universe=4)
        engine.add(TupleTable("edge", [np.array([0, 0, 1]),
                                       np.array([1, 2, 3])],
                              key_universe=4, tail_nested=True))
        start = AggregateTable("start", 4, "sum")
        start.combine(np.array([0]), np.array([1.0]))
        engine.add(start)
        paths = AggregateTable("paths", 4, "sum")
        engine.add(paths)

        x, z, v = Var("x"), Var("z"), Var("v")
        rule = Rule(head=Head("paths", z, 1.0, agg="sum"),
                    body=[Atom("start", x, v), Atom("edge", x, z)])
        stats = engine.evaluate(rule)
        np.testing.assert_array_equal(paths.values, [0, 1, 1, 0])
        assert stats.produced_tuples == 2

    def test_assignment_pipeline(self):
        engine = SocialiteEngine(num_shards=1, vertex_universe=3)
        vals = AggregateTable("vals", 3, "sum")
        vals.combine(np.array([0, 1, 2]), np.array([2.0, 4.0, 8.0]))
        engine.add(vals)
        out = AggregateTable("out", 3, "sum")
        engine.add(out)
        n, v = Var("n"), Var("v")
        rule = Rule(
            head=Head("out", n, Var("w"), agg="sum"),
            body=[Atom("vals", n, v)],
            assigns=[Assign("w", lambda v_: v_ * 10, ("v",))],
        )
        engine.evaluate(rule)
        np.testing.assert_array_equal(out.values, [20, 40, 80])

    def test_semi_join_filters(self):
        # closed(x, $SUM(1)) :- edge(x, y), edge(y, x): mutual edges.
        engine = SocialiteEngine(num_shards=1, vertex_universe=3)
        engine.add(TupleTable("edge", [np.array([0, 1, 1]),
                                       np.array([1, 0, 2])],
                              key_universe=3, tail_nested=True))
        closed = AggregateTable("closed", 3, "sum")
        engine.add(closed)
        x, y = Var("x"), Var("y")
        rule = Rule(head=Head("closed", x, 1.0, agg="sum"),
                    body=[Atom("edge", x, y), Atom("edge", y, x)])
        engine.evaluate(rule)
        np.testing.assert_array_equal(closed.values, [1, 1, 0])

    def test_unknown_table_raises(self):
        engine = SocialiteEngine()
        with pytest.raises(ReproError):
            engine.evaluate(Rule(head=Head("out", Var("x"), 1.0),
                                 body=[Atom("missing", Var("x"), Var("y"))]))

    def test_traffic_counted_across_shards(self, graph_small):
        engine = SocialiteEngine(num_shards=4,
                                 vertex_universe=graph_small.num_vertices)
        engine.add(TupleTable("edge",
                              [graph_small.sources(), graph_small.targets],
                              4, key_universe=graph_small.num_vertices,
                              tail_nested=True))
        seed = AggregateTable("seed", graph_small.num_vertices, "sum", 4)
        seed.combine(np.arange(graph_small.num_vertices),
                     np.ones(graph_small.num_vertices))
        engine.add(seed)
        out = AggregateTable("out", graph_small.num_vertices, "sum", 4)
        engine.add(out)
        s, t, v = Var("s"), Var("t"), Var("v")
        rule = Rule(head=Head("out", t, 1.0, agg="sum"),
                    body=[Atom("seed", s, v), Atom("edge", s, t)])
        stats = engine.evaluate(rule)
        assert stats.traffic.sum() > 0
        assert np.all(np.diag(stats.traffic) == 0)


class TestSociaLite:
    def test_pagerank_matches_reference(self, graph_small):
        result = socialite.pagerank(graph_small, make_cluster(2), iterations=4)
        np.testing.assert_allclose(
            result.values, pagerank_reference(graph_small, 4), rtol=1e-10
        )

    def test_bfs_matches_reference(self, graph_small_undirected):
        result = socialite.bfs(graph_small_undirected, make_cluster(2))
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_small_undirected, 0)
        )

    def test_triangles_match_reference(self, graph_triangles):
        result = socialite.triangle_count(graph_triangles, make_cluster(2))
        assert result.values == triangle_count_reference(graph_triangles)

    def test_cf_converges(self):
        ratings = netflix_like_ratings(scale=9, num_items=48, seed=43)
        result = socialite.collaborative_filtering(
            ratings, make_cluster(2), hidden_dim=8, iterations=3
        )
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]

    def test_network_optimization_speedup(self, graph_small):
        # Table 7: multi-socket networking speeds up network-bound
        # algorithms ~2.4x (PageRank) at 4 nodes.
        scale = 1e5
        published = socialite.pagerank(
            graph_small, Cluster(paper_cluster(4), scale_factor=scale),
            iterations=3, optimized=False,
        )
        optimized = socialite.pagerank(
            graph_small, Cluster(paper_cluster(4), scale_factor=scale),
            iterations=3, optimized=True,
        )
        speedup = (published.time_per_iteration_s
                   / optimized.time_per_iteration_s)
        assert speedup > 1.2

    def test_results_identical_under_both_stacks(self, graph_small):
        published = socialite.pagerank(graph_small, make_cluster(2),
                                       iterations=3, optimized=False)
        optimized = socialite.pagerank(graph_small, make_cluster(2),
                                       iterations=3, optimized=True)
        np.testing.assert_allclose(published.values, optimized.values)

    def test_validates_arguments(self, graph_small):
        with pytest.raises(ValueError):
            socialite.pagerank(graph_small, make_cluster(1), iterations=0)
        with pytest.raises(ValueError):
            socialite.bfs(graph_small, make_cluster(1), source=10**9)
