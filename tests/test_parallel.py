"""Parallel sweep executor: byte-identical journals across worker counts.

The synthetic tests pin the scheduling-independence contract cheaply
(same records, same journal bytes, same retry/quarantine taxonomy for
any ``jobs``); the table5-subset test asserts it end to end on real
experiment cells. Cross-mode resume tests prove journals written
serially and in parallel are interchangeable.
"""

import os
import pickle

import pytest

from repro.errors import CapacityError, ReproError
from repro.harness import Sweep
from repro.harness.parallel import (
    _looks_like_pickling_error,
    run_cells_parallel,
)
from repro.harness.sweep import CellPolicy
from repro.harness.tables import table5
from repro.observability import Tracer


def keys(n):
    return [{"cell": i} for i in range(n)]


# Module-level executors: picklable, so these tests also pass on spawn
# platforms where closures cannot cross the process boundary.

def ok_executor(key, budget_s=None):
    return {"x": key["cell"] * 10}


def mixed_executor(key, budget_s=None):
    if key["cell"] == 1:
        raise CapacityError(0, 10, 5)
    if key["cell"] == 2:
        raise ValueError("always broken")
    return {"x": key["cell"]}


def attribute_error_executor(key, budget_s=None):
    raise AttributeError("'NoneType' object has no attribute 'edges'")


class TestParallelEngine:
    def test_jobs4_records_match_serial_exactly(self):
        serial = Sweep("s").run(keys(8), ok_executor)
        parallel = Sweep("s", jobs=4).run(keys(8), ok_executor)
        assert parallel.to_dict() == serial.to_dict()
        assert [r.value["x"] for r in parallel] == \
            [r.value["x"] for r in serial]

    def test_journals_byte_identical_across_worker_counts(self, tmp_path):
        journals = {}
        for jobs in (1, 2, 4):
            journals[jobs] = tmp_path / f"jobs{jobs}.jsonl"
            Sweep("s", journal=journals[jobs], jobs=jobs).run(
                keys(8), ok_executor)
        assert journals[2].read_bytes() == journals[1].read_bytes()
        assert journals[4].read_bytes() == journals[1].read_bytes()

    def test_failure_taxonomy_survives_the_pool(self):
        serial = Sweep("s", max_retries=2).run(keys(4), mixed_executor)
        parallel = Sweep("s", max_retries=2, jobs=4).run(
            keys(4), mixed_executor)
        assert parallel.to_dict() == serial.to_dict()
        oom = parallel.get(cell=1)
        assert oom.status == "out-of-memory" and not oom.quarantined
        bad = parallel.get(cell=2)
        assert bad.status == "failed" and bad.quarantined
        assert bad.attempts == 3                # 1 try + 2 retries
        assert bad.backoff_s == [0.5, 1.0]      # policy crossed the pool
        report = parallel.completeness()
        assert report["statuses"]["ok"] == 2 and report["retries"] == 2

    def test_merged_trace_stamps_workers(self):
        tracer = Tracer()
        Sweep("s", jobs=2, tracer=tracer).run(keys(4), ok_executor)
        cells = tracer.spans_named("cell")
        assert len(cells) == 4
        workers = {span.attrs["worker"] for span in cells}
        assert all(workers)                     # every span says who ran it
        sweep_span = tracer.spans_named("sweep")[0]
        assert sweep_span.attrs["jobs"] == 2
        # Grafted under the sweep span, not floating at the root.
        assert all(span.parent is not None and span.depth == 1
                   for span in cells)

    def test_parallel_journal_resumes_serially(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        direct = Sweep("s", jobs=4, journal=journal).run(keys(6),
                                                         ok_executor)
        original = journal.read_bytes()
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n")  # header + 3 cells

        resumed = Sweep("s", journal=journal, resume=True).run(
            keys(6), ok_executor)
        assert resumed.replayed == 3 and resumed.executed == 3
        assert resumed.to_dict()["records"] == direct.to_dict()["records"]
        assert journal.read_bytes() == original

    def test_serial_journal_resumes_in_parallel(self, tmp_path):
        journal = tmp_path / "s.jsonl"
        direct = Sweep("s", journal=journal).run(keys(6), ok_executor)
        original = journal.read_bytes()
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:3]) + "\n")  # header + 2 cells

        resumed = Sweep("s", jobs=4, journal=journal, resume=True).run(
            keys(6), ok_executor)
        assert resumed.replayed == 2 and resumed.executed == 4
        assert resumed.to_dict()["records"] == direct.to_dict()["records"]
        assert journal.read_bytes() == original

    def test_effective_jobs_resolution(self):
        assert Sweep("s").effective_jobs() == 1
        assert Sweep("s", jobs=1).effective_jobs() == 1
        assert Sweep("s", jobs=3).effective_jobs() == 3
        assert Sweep("s", jobs=0).effective_jobs() == (os.cpu_count() or 1)
        with pytest.raises(ReproError, match="jobs"):
            Sweep("s", jobs=-1)

    def test_run_cells_parallel_yields_in_enumeration_order(self):
        pending = [(index, {"cell": index}, str(index))
                   for index in range(6)]
        completed = list(run_cells_parallel(pending, ok_executor,
                                            CellPolicy(), jobs=3))
        assert [cell.index for cell in completed] == list(range(6))
        assert [cell.cid for cell in completed] == \
            [str(index) for index in range(6)]
        assert all(cell.record.ok for cell in completed)
        assert all(cell.worker for cell in completed)


class TestPicklingErrorDetection:
    """The serialization-hint translation must not swallow real bugs."""

    def test_only_serialization_failures_qualify(self):
        assert _looks_like_pickling_error(
            pickle.PicklingError("Can't pickle <function <lambda>>"))
        assert _looks_like_pickling_error(
            TypeError("cannot pickle '_thread.lock' object"))
        # A worker-side AttributeError is a bug in the executor, not a
        # transport problem — it must never earn the "run with jobs=1"
        # hint (the old any-AttributeError match did exactly that).
        assert not _looks_like_pickling_error(
            AttributeError("'NoneType' object has no attribute 'edges'"))
        assert not _looks_like_pickling_error(
            RuntimeError("failed while loading pickle fixtures"))
        assert not _looks_like_pickling_error(
            TypeError("unsupported operand type(s)"))

    def test_worker_attribute_error_propagates_untranslated(self):
        result = Sweep("s", jobs=2, max_retries=0).run(
            keys(3), attribute_error_executor)
        for record in result:
            assert record.status == "failed" and record.quarantined
            assert record.failure.startswith("AttributeError")
            assert "jobs=1" not in record.failure


class TestTable5Parallel:
    SUBSET = dict(algorithms=("pagerank",), frameworks=("galois",))

    def test_parallel_table5_journal_byte_identical(self, tmp_path):
        serial_journal = tmp_path / "serial.jsonl"
        parallel_journal = tmp_path / "parallel.jsonl"
        serial = table5(sweep=Sweep("table5", journal=serial_journal),
                        **self.SUBSET)
        parallel = table5(
            sweep=Sweep("table5", journal=parallel_journal, jobs=4),
            **self.SUBSET)
        assert parallel == serial
        assert parallel_journal.read_bytes() == serial_journal.read_bytes()
