"""Tests for partitioning schemes (Table 2 / Section 6.1.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PartitionError
from repro.graph import (
    CSRGraph,
    EdgeList,
    partition_2d,
    partition_edges_1d,
    partition_vertex_cut,
    partition_vertices_1d,
)


def star_graph(hub_degree=200, num_parts=4):
    """One hub connected to everyone — the pathological 1-D case."""
    n = hub_degree + 1
    pairs = [(0, i) for i in range(1, n)]
    return CSRGraph.from_edges(EdgeList.from_pairs(n, pairs))


class TestVertex1D:
    def test_covers_all_vertices(self):
        part = partition_vertices_1d(100, 4)
        assert part.num_parts == 4
        assert part.part_sizes().sum() == 100
        assert part.owner(0) == 0
        assert part.owner(99) == 3

    def test_balanced_by_vertices(self):
        part = partition_vertices_1d(100, 4)
        np.testing.assert_array_equal(part.part_sizes(), [25, 25, 25, 25])

    def test_more_parts_than_vertices(self):
        part = partition_vertices_1d(2, 4)
        assert part.part_sizes().sum() == 2

    def test_owner_of_many_matches_owner(self):
        part = partition_vertices_1d(50, 3)
        vertices = np.arange(50)
        owners = part.owner_of_many(vertices)
        assert all(owners[v] == part.owner(v) for v in vertices)

    def test_invalid_parts(self):
        with pytest.raises(PartitionError):
            partition_vertices_1d(10, 0)


class TestEdgeBalanced1D:
    def test_balances_edges_not_vertices(self):
        # Vertex 0 has 60 edges, the rest have ~1: an equal-vertex split
        # puts almost everything on part 0; the edge-balanced split must not.
        pairs = [(0, i) for i in range(1, 61)]
        pairs += [(i, i + 1) for i in range(61, 119)]
        graph = CSRGraph.from_edges(EdgeList.from_pairs(120, pairs))
        part = partition_edges_1d(graph, 2)
        lo, hi = part.part_range(0)
        edges_part0 = int(graph.offsets[hi] - graph.offsets[lo])
        assert abs(edges_part0 - graph.num_edges / 2) <= 60  # hub is atomic

    def test_covers_vertices(self):
        graph = star_graph()
        part = partition_edges_1d(graph, 4)
        assert part.bounds[0] == 0
        assert part.bounds[-1] == graph.num_vertices

    def test_single_part(self):
        graph = star_graph()
        part = partition_edges_1d(graph, 1)
        assert part.num_parts == 1
        assert part.part_range(0) == (0, graph.num_vertices)


class TestPartition2D:
    def test_requires_square(self):
        with pytest.raises(PartitionError):
            partition_2d(100, 3)

    def test_grid_assignment(self):
        part = partition_2d(100, 4)
        assert part.grid == 2
        # src in [0,50), dst in [50,100) -> row 0, col 1 -> part 1.
        assert part.part_of(10, 75) == 1
        assert part.part_of(75, 10) == 2
        assert part.row_of_part(3) == 1 and part.col_of_part(3) == 1

    def test_all_edges_assigned_in_range(self):
        part = partition_2d(64, 16)
        rng = np.random.default_rng(0)
        src = rng.integers(0, 64, size=500)
        dst = rng.integers(0, 64, size=500)
        parts = part.part_of(src, dst)
        assert parts.min() >= 0 and parts.max() < 16


class TestVertexCut:
    def test_edges_fully_assigned(self):
        graph = star_graph()
        cut = partition_vertex_cut(graph, 4)
        assert cut.edge_part.size == graph.num_edges
        assert cut.edges_per_part().sum() == graph.num_edges

    def test_hub_is_replicated(self):
        graph = star_graph(hub_degree=400)
        cut = partition_vertex_cut(graph, 4)
        # The hub must appear on more than one part; leaves should not.
        assert cut.mirror_counts[0] > 1
        assert cut.replication_factor() >= 1.0

    def test_hub_load_balance_beats_1d(self):
        graph = star_graph(hub_degree=400)
        cut = partition_vertex_cut(graph, 4)
        per_part = cut.edges_per_part()
        # 1-D vertex partitioning puts 100% of edges on the hub's part;
        # a vertex cut must spread them.
        assert per_part.max() < graph.num_edges

    def test_masters_in_range(self):
        graph = star_graph()
        cut = partition_vertex_cut(graph, 3)
        assert cut.masters.min() >= 0 and cut.masters.max() < 3

    def test_invalid_parts(self):
        with pytest.raises(PartitionError):
            partition_vertex_cut(star_graph(), 0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=200),
    st.integers(min_value=1, max_value=8),
)
def test_vertex_1d_partition_is_total_and_disjoint(num_vertices, num_parts):
    part = partition_vertices_1d(num_vertices, num_parts)
    owners = part.owner_of_many(np.arange(num_vertices))
    assert owners.min() >= 0 and owners.max() < num_parts
    sizes = np.bincount(owners, minlength=num_parts)
    np.testing.assert_array_equal(sizes, part.part_sizes())
    # Balance: no part exceeds ceil(n / p) vertices.
    assert sizes.max() <= -(-num_vertices // num_parts) + 1
