"""Out-of-core pipeline: streamed generation, sharded CSR, beyond-RAM runs.

Covers the whole tentpole contract: the chunked R-MAT stream is
bit-identical to the monolithic generator at any chunk size; the
partitioned on-disk CSR carries the same sha256 digests as the dense
build; engines produce identical results (and identical simulated
runtimes) through either representation; the memory budget actually
bounds the mapped working set; shard-level cache keys regenerate one
chunk on a miss; and the headline demonstration — a Graph500 run that
dies under ``RLIMIT_AS`` in-memory but completes streamed — holds at a
test-sized configuration.
"""

import hashlib
import json
import os
import shutil
import subprocess
import sys

import numpy as np
import pytest

from repro.datagen import (
    OUT_OF_CORE_ENV,
    RMATStream,
    cache_entries,
    pinned_memory,
    rmat_edges,
    rmat_graph,
    rmat_graph_sharded,
    rmat_triangle_graph,
    rmat_triangle_graph_sharded,
)
from repro.datagen import cache as cache_module
from repro.graph import (
    ShardedCSRGraph,
    build_sharded_csr,
    graph_digests,
    iter_csr_blocks,
)
from repro.graph import sharded as sharded_module
from repro.harness import ExperimentSpec, run
from repro.observability import Tracer, peak_rss_bytes, reset_peak_rss

GRAPH_ARGS = dict(scale=8, edge_factor=8, seed=7)


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the dataset cache at a private root and enable it."""
    root = tmp_path / "cache"
    monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(root))
    monkeypatch.delenv(cache_module.CACHE_ENABLE_ENV, raising=False)
    yield root
    # Pins are process-global; a leaked pin would satisfy the next
    # test's builds from memory instead of its private cache root.
    cache_module.clear_pins()


def dense_graph(directed=False, **overrides):
    args = {**GRAPH_ARGS, **overrides}
    return rmat_graph.__wrapped__(directed=directed, **args)


def sharded_graph(tmp_path, directed=False, chunk_edges=512,
                  num_partitions=4, **overrides):
    """Build a sharded CSR directly from the stream (no disk cache)."""
    args = {**GRAPH_ARGS, **overrides}
    stream = RMATStream(args["scale"], args["edge_factor"],
                        seed=args["seed"])
    out = tmp_path / f"sharded-{directed}-{chunk_edges}-{num_partitions}"
    build_sharded_csr((block for _, block in stream.chunks(chunk_edges)),
                      stream.num_vertices, out,
                      num_partitions=num_partitions,
                      symmetrize=not directed)
    return ShardedCSRGraph(out)


class TestStreamBitIdentity:
    def test_chunks_concatenate_to_the_monolithic_edge_list(self):
        full = rmat_edges(**GRAPH_ARGS)
        stream = RMATStream(GRAPH_ARGS["scale"], GRAPH_ARGS["edge_factor"],
                            seed=GRAPH_ARGS["seed"])
        assert stream.num_edges == full.num_edges
        for chunk_edges in (64, 500, full.num_edges):
            src = np.concatenate(
                [block.src for _, block in stream.chunks(chunk_edges)])
            dst = np.concatenate(
                [block.dst for _, block in stream.chunks(chunk_edges)])
            assert np.array_equal(src, full.src), chunk_edges
            assert np.array_equal(dst, full.dst), chunk_edges

    def test_arbitrary_slice_matches_the_full_stream(self):
        full = rmat_edges(**GRAPH_ARGS)
        stream = RMATStream(GRAPH_ARGS["scale"], GRAPH_ARGS["edge_factor"],
                            seed=GRAPH_ARGS["seed"])
        # Unaligned, mid-stream window: the PCG64 advance arithmetic,
        # not a replay-from-zero.
        block = stream.chunk(777, 1234)
        assert np.array_equal(block.src, full.src[777:1234])
        assert np.array_equal(block.dst, full.dst[777:1234])

    def test_num_chunks_covers_the_stream_exactly(self):
        stream = RMATStream(6, 4, seed=1)
        for chunk_edges in (1, 100, stream.num_edges, 10 * stream.num_edges):
            blocks = [block for _, block in stream.chunks(chunk_edges)]
            assert len(blocks) == stream.num_chunks(chunk_edges)
            assert sum(b.num_edges for b in blocks) == stream.num_edges


class TestShardedDigests:
    @pytest.mark.parametrize("directed", [False, True])
    @pytest.mark.parametrize("chunk_edges", [256, 1000, 1 << 20])
    def test_digests_match_the_dense_build(self, tmp_path, directed,
                                           chunk_edges):
        dense = dense_graph(directed=directed)
        sharded = sharded_graph(tmp_path, directed=directed,
                                chunk_edges=chunk_edges)
        assert sharded.num_vertices == dense.num_vertices
        assert sharded.num_edges == dense.num_edges
        assert sharded.digests() == graph_digests(
            dense, num_partitions=sharded.num_partitions)

    def test_partition_count_does_not_change_the_graph(self, tmp_path):
        dense = dense_graph()
        for parts in (1, 3, 8):
            sharded = sharded_graph(tmp_path, num_partitions=parts)
            assert sharded.num_partitions == parts
            assert np.array_equal(sharded.to_csr().targets, dense.targets)
            assert np.array_equal(sharded.to_csr().offsets, dense.offsets)

    def test_triangle_variant_matches_the_dense_build(self, cache_dir):
        dense = rmat_triangle_graph.__wrapped__(scale=7, edge_factor=4,
                                                seed=5)
        sharded = rmat_triangle_graph_sharded(scale=7, edge_factor=4, seed=5,
                                              chunk_edges=256)
        assert sharded.digests() == graph_digests(
            dense, num_partitions=sharded.num_partitions)

    def test_iter_csr_blocks_walks_both_representations_alike(self, tmp_path):
        dense = dense_graph()
        sharded = sharded_graph(tmp_path)
        digest = hashlib.sha256()
        for lo, hi, offsets, targets in iter_csr_blocks(dense):
            digest.update(np.ascontiguousarray(targets))
        dense_digest = digest.hexdigest()
        digest = hashlib.sha256()
        for lo, hi, offsets, targets in iter_csr_blocks(sharded):
            digest.update(np.ascontiguousarray(targets))
        assert digest.hexdigest() == dense_digest


class TestShardedGraphApi:
    def test_neighbors_match_dense(self, tmp_path):
        dense = dense_graph()
        sharded = sharded_graph(tmp_path)
        for v in (0, 1, 17, dense.num_vertices - 1):
            assert np.array_equal(sharded.neighbors(v), dense.neighbors(v))
            assert sharded.degree(v) == dense.degree(v)
        assert np.array_equal(sharded.out_degrees(), dense.out_degrees())

    def test_neighbors_of_many_matches_dense(self, tmp_path):
        dense = dense_graph()
        sharded = sharded_graph(tmp_path)
        frontier = np.array([3, 40, 41, 200, 250], dtype=np.int64)
        got_t, got_o = sharded.neighbors_of_many(frontier)
        want_t, want_o = dense.neighbors_of_many(frontier)
        assert np.array_equal(got_t, want_t)
        assert np.array_equal(got_o, want_o)

    def test_frontier_neighbors_unique_matches_a_dense_union(self, tmp_path):
        dense = dense_graph()
        sharded = sharded_graph(tmp_path)
        frontier = np.arange(0, dense.num_vertices, 7)
        unique, edges = sharded.frontier_neighbors_unique(frontier)
        targets, _ = dense.neighbors_of_many(frontier)
        assert edges == len(targets)
        assert np.array_equal(unique, np.unique(targets))

    def test_reverse_matches_the_dense_transpose(self, tmp_path):
        dense = dense_graph(directed=True)
        sharded = sharded_graph(tmp_path, directed=True)
        reverse = sharded.reverse()
        want = dense.reverse()
        assert reverse.digests() == graph_digests(
            want, num_partitions=reverse.num_partitions)


class TestMemoryBudget:
    def test_mapped_working_set_stays_under_the_budget(self, tmp_path):
        sharded = sharded_graph(tmp_path, num_partitions=8)
        per_part = max(p.num_edges for p in sharded.partitions()) * 8
        budget_mb = 2.5 * per_part / 2**20     # room for ~2 partitions
        sharded.memory_budget_mb = budget_mb
        sharded.release()
        tracer = Tracer()
        with sharded_module.use_tracer(tracer):
            for part in sharded.partitions():
                part.targets
                assert sharded.mapped_nbytes() <= budget_mb * 2**20
        loads = tracer.spans_named("partition-load")
        evicts = tracer.spans_named("partition-evict")
        assert len(loads) == sharded.num_partitions
        # Power-law partitions are uneven, but a 2.5-partition budget
        # cannot hold all 8: something must have been evicted.
        assert evicts
        assert sharded.mapped_nbytes() < sharded.num_edges * 8

    def test_no_budget_means_no_eviction(self, tmp_path):
        sharded = sharded_graph(tmp_path, num_partitions=4)
        tracer = Tracer()
        with sharded_module.use_tracer(tracer):
            for part in sharded.partitions():
                part.targets
        assert not tracer.spans_named("partition-evict")
        assert sharded.mapped_nbytes() == sharded.num_edges * 8

    def test_resident_nbytes_stays_far_below_virtual(self, cache_dir):
        sharded = rmat_graph_sharded(**GRAPH_ARGS, directed=False,
                                     chunk_edges=512)
        for part in sharded.partitions():
            part.targets
        assert sharded.nbytes() >= sharded.num_edges * 8
        # Mapped shard files are reclaimable; the accounting the serve
        # admission and supervisor headroom rely on must not charge
        # them as anonymous memory.
        assert sharded.resident_nbytes() == 0


class TestShardCacheKeys:
    def test_one_missing_shard_regenerates_one_chunk(self, cache_dir):
        chunk_edges = 512
        rmat_graph_sharded(**GRAPH_ARGS, directed=False,
                           chunk_edges=chunk_edges)
        shards = [e for e in cache_entries()
                  if e["generator"] == "rmat_edge_shard"]
        num_chunks = RMATStream(
            GRAPH_ARGS["scale"], GRAPH_ARGS["edge_factor"],
            seed=GRAPH_ARGS["seed"]).num_chunks(chunk_edges)
        assert len(shards) == num_chunks > 1
        # Lose one edge shard and the assembled graph; rebuilding must
        # regenerate exactly that one chunk and reuse the rest.
        shutil.rmtree(cache_dir / shards[0]["key"])
        for entry in cache_entries():
            if entry["generator"] == "rmat_graph_sharded":
                shutil.rmtree(cache_dir / entry["key"])
        tracer = Tracer()
        with cache_module.use_tracer(tracer):
            rebuilt = rmat_graph_sharded(**GRAPH_ARGS, directed=False,
                                         chunk_edges=chunk_edges)
        misses = [s for s in tracer.spans_named("dataset-cache-miss")
                  if s.attrs["generator"] == "rmat_edge_shard"]
        hits = [s for s in tracer.spans_named("dataset-cache-hit")
                if s.attrs["generator"] == "rmat_edge_shard"]
        assert len(misses) == 1
        assert len(hits) == num_chunks - 1
        dense = dense_graph()
        assert rebuilt.digests() == graph_digests(
            dense, num_partitions=rebuilt.num_partitions)

    def test_pinning_holds_the_manifest_not_resident_pages(self, cache_dir):
        with cache_module.pinning():
            sharded = rmat_graph_sharded(**GRAPH_ARGS, directed=False,
                                         chunk_edges=512)
        pins = cache_module.pinned()
        assert any(p["generator"] == "rmat_graph_sharded" for p in pins)
        memory = pinned_memory()
        assert memory["virtual_bytes"] >= sharded.nbytes()
        # The pinned sharded graph is file-backed end to end.
        assert memory["resident_bytes"] < memory["virtual_bytes"]

    def test_cache_stats_reports_the_shard_inventory(self, cache_dir):
        rmat_graph_sharded(**GRAPH_ARGS, directed=False, chunk_edges=512,
                           num_partitions=4)
        stats = cache_module.stats()
        assert stats["shards"]["sharded_graphs"] == 1
        assert stats["shards"]["partitions"] == 4
        assert stats["shards"]["edge_shards"] > 1

    def test_out_of_core_env_reroutes_the_plain_builders(self, cache_dir,
                                                         monkeypatch):
        dense = dense_graph()
        monkeypatch.setenv(OUT_OF_CORE_ENV, "1")
        graph = rmat_graph(**GRAPH_ARGS, directed=False)
        assert isinstance(graph, ShardedCSRGraph)
        assert graph.digests() == graph_digests(
            dense, num_partitions=graph.num_partitions)


class TestEngineEquivalence:
    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs", "wcc"])
    def test_runs_are_identical_through_either_representation(
            self, cache_dir, algorithm):
        directed = algorithm == "pagerank"
        dense = dense_graph(directed=directed)
        sharded = rmat_graph_sharded(**GRAPH_ARGS, directed=directed,
                                     chunk_edges=512, memory_budget_mb=0.5)
        spec = dict(algorithm=algorithm, framework="galois", nodes=1)
        got = run(ExperimentSpec(dataset=sharded, **spec))
        want = run(ExperimentSpec(dataset=dense, **spec))
        assert got.runtime() == want.runtime()
        got_values = got.result.values
        want_values = want.result.values
        if isinstance(got_values, dict):
            assert got_values == want_values
        else:
            assert np.array_equal(got_values, want_values)


class TestPeakRss:
    def test_peak_rss_is_positive_and_resets(self):
        before = peak_rss_bytes()
        assert before > 0
        if not reset_peak_rss():
            pytest.skip("peak-RSS reset needs /proc/self/clear_refs")
        # A reset rewinds the high-water mark to (about) current RSS;
        # it must not exceed the old lifetime peak.
        assert 0 < peak_rss_bytes() <= before


class TestOutOfCoreDemo:
    def test_oom_to_ok_transition(self, cache_dir, tmp_path):
        # A fresh interpreter, not an in-process run: the workers fork
        # from their parent, and a fat pytest parent donates its freed
        # heap arenas (extra headroom) and resident interpreter (extra
        # RSS) to the children, wrecking the RLIMIT_AS calibration in
        # both directions. The CLI path is also what CI exercises.
        # Knobs calibrated so the dense build's transient allocations
        # blow the anonymous cap while the streamed path fits.
        journal = tmp_path / "outofcore.jsonl"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "outofcore", "demo",
             "--scale", "16", "--memory-limit-mb", "32",
             "--mapped-allowance-mb", "48", "--memory-budget-mb", "16",
             "--chunk-edges", str(1 << 16), "--partitions", "8",
             "--roots", "2", "--journal", str(journal), "--json"],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": "src"})
        assert proc.returncode == 0, proc.stderr
        report = json.loads(proc.stdout)
        assert report["in_memory"]["status"] == "out-of-memory"
        assert report["streamed"]["status"] == "ok"
        assert report["transition"] is True
        value = report["streamed"]["value"]
        assert value["all_valid"]
        # Peak RSS bounded: interpreter baseline + cap + shard maps.
        assert 0 < value["peak_rss_mb"] < 160
        lines = [json.loads(line)
                 for line in journal.read_text().splitlines()]
        statuses = {rec["key"]["mode"]: rec["status"]
                    for rec in lines if "key" in rec}
        assert statuses == {"in-memory": "out-of-memory", "streamed": "ok"}


class TestJournalDifferential:
    """Byte-identical sweep journals through both storage paths."""

    CELLS = [{"algorithm": algorithm, "framework": "galois",
              "dataset": "synthetic"}
             for algorithm in ("pagerank", "bfs", "triangle_counting")]

    def _run(self, path, out_of_core, monkeypatch):
        from repro.harness.datasets import clear_proxy_caches
        from repro.harness.sweep import Sweep
        from repro.harness.tables import _single_node_cell

        if out_of_core:
            monkeypatch.setenv(OUT_OF_CORE_ENV, "1")
        else:
            monkeypatch.delenv(OUT_OF_CORE_ENV, raising=False)
        clear_proxy_caches()
        sweep = Sweep("table5-subset", journal=path)
        sweep.run(self.CELLS, _single_node_cell)
        return path.read_bytes()

    def test_table5_subset_journals_are_byte_identical(self, cache_dir,
                                                       tmp_path,
                                                       monkeypatch):
        dense = self._run(tmp_path / "dense.jsonl", False, monkeypatch)
        streamed = self._run(tmp_path / "streamed.jsonl", True, monkeypatch)
        assert dense == streamed
