"""Distributional tests for the generators and the dataset catalog."""

import numpy as np
import pytest

from repro.datagen import (
    CATALOG,
    GRAPH500_PARAMS,
    RATINGS_PARAMS,
    TRIANGLE_PARAMS,
    RMATParams,
    dataset,
    netflix_like_ratings,
    rmat_edges,
)
from repro.datagen.ratings import _NETFLIX_STAR_PROBS, _NETFLIX_STARS
from repro.graph import fit_power_law, gini_coefficient


class TestParameterSets:
    def test_the_three_paper_parameter_sets(self):
        # Section 4.1.2 names all three explicitly.
        assert GRAPH500_PARAMS == (0.57, 0.19, 0.19)
        assert TRIANGLE_PARAMS == (0.45, 0.15, 0.15)
        assert RATINGS_PARAMS == (0.40, 0.22, 0.22)

    def test_triangle_params_less_skewed(self):
        # Lower A concentrates fewer edges on hub vertices.
        default = rmat_edges(12, 16, RMATParams(*GRAPH500_PARAMS), seed=5)
        reduced = rmat_edges(12, 16, RMATParams(*TRIANGLE_PARAMS), seed=5)
        assert gini_coefficient(reduced.out_degrees()) < \
            gini_coefficient(default.out_degrees())

    def test_power_law_exponent_band(self):
        edges = rmat_edges(13, 16, seed=6)
        degrees = edges.out_degrees() + edges.in_degrees()
        fit = fit_power_law(degrees)
        # Social-graph territory.
        assert 1.3 < fit.alpha < 4.5


class TestStarDistribution:
    def test_probabilities_sum_to_one(self):
        assert _NETFLIX_STAR_PROBS.sum() == pytest.approx(1.0)

    def test_sampled_marginal_matches(self):
        ratings = netflix_like_ratings(scale=12, num_items=128, seed=7)
        observed = np.array([
            float((ratings.ratings == star).mean()) for star in _NETFLIX_STARS
        ])
        np.testing.assert_allclose(observed, _NETFLIX_STAR_PROBS, atol=0.02)

    def test_mean_rating_near_netflix(self):
        # The Netflix training set averages ~3.6 stars.
        ratings = netflix_like_ratings(scale=12, num_items=128, seed=8)
        assert 3.4 < ratings.ratings.mean() < 3.8


class TestCatalogFidelity:
    @pytest.mark.parametrize("name,paper_ratio", [
        ("facebook", 41_919_708 / 2_937_612),
        ("wikipedia", 84_751_827 / 3_566_908),
        ("livejournal", 85_702_475 / 4_847_571),
        ("twitter", 1_468_365_182 / 61_578_415),
    ])
    def test_proxy_average_degree_tracks_paper(self, name, paper_ratio):
        graph = dataset(name)
        proxy_ratio = graph.num_edges / graph.num_vertices
        # Dedup losses pull the proxy below the configured edge factor;
        # the ratio must still be within 2x of the real dataset's.
        assert paper_ratio / 2 < proxy_ratio < paper_ratio * 2

    def test_all_graph_proxies_are_skewed(self):
        for name, spec in CATALOG.items():
            if spec.kind != "graph" or name.startswith("rmat_mini"):
                continue
            graph = spec.build()
            assert gini_coefficient(graph.out_degrees()) > 0.3, name

    def test_paper_edge_counts_are_verbatim(self):
        # Spot checks against Table 3 of the paper.
        assert CATALOG["facebook"].paper_edges == 41_919_708
        assert CATALOG["yahoo_music"].paper_edges == 252_800_275
        assert CATALOG["synthetic_collaborative"].paper_edges == \
            16_742_847_256

    def test_seeds_are_distinct(self):
        # Two different datasets must not alias to the same graph.
        a, b = dataset("facebook"), dataset("wikipedia")
        assert a.num_edges != b.num_edges
