"""Smoke + invariant tests for the table/figure regenerators and report.

The benchmark suite runs the full-size regenerations; these tests use
narrowed arguments (fewer frameworks / node counts) so the whole file
stays fast while still exercising every code path.
"""

import numpy as np
import pytest

from repro.harness import (
    figure3,
    figure4,
    figure6,
    figure7,
    report,
    table1,
    table2,
    table3,
    table7,
)
from repro.harness.tables import table5, table6


class TestTables:
    def test_table1_rows(self):
        rows = table1(hidden_dim=64)
        assert len(rows) == 4
        names = [row["algorithm"] for row in rows]
        assert "PageRank" in names and "Triangle Counting" in names
        cf = next(r for r in rows if r["algorithm"] ==
                  "Collaborative Filtering")
        assert cf["message_bytes_per_edge"] == 512

    def test_table2_matches_profiles(self):
        rows = table2()
        assert len(rows) == 6
        rendered = report.render_rows(rows, ["framework", "language"])
        assert "SociaLite" in rendered

    def test_table3_inventory(self):
        rows = table3()
        assert len(rows) == 8
        assert all(row["proxy_edges"] > 0 for row in rows)

    def test_table5_narrowed(self):
        data = table5(frameworks=("galois",), algorithms=("pagerank",))
        cell = data["pagerank"]["galois"]
        assert 0.8 < cell["slowdown"] < 3.0
        assert all(status == "ok" for status in cell["statuses"])

    def test_table6_narrowed(self):
        data = table6(frameworks=("combblas",), algorithms=("pagerank",),
                      node_counts=(4,))
        cell = data["pagerank"]["combblas"]
        assert 1.0 < cell["slowdown"] < 10.0

    def test_table7_speedups(self):
        data = table7()
        assert data["pagerank"]["speedup"] > 1.5
        assert data["triangle_counting"]["speedup"] > 1.2
        rendered = report.render_table7(data)
        assert "speedup" in rendered


class TestFigures:
    def test_figure3_narrowed(self):
        data = figure3(frameworks=("native", "galois"),
                       algorithms=("pagerank",))
        panel = data["pagerank"]
        assert set(panel) == {"livejournal", "facebook", "wikipedia",
                              "synthetic"}
        for cell in panel.values():
            assert cell["galois"] >= cell["native"] * 0.99

    def test_figure4_narrowed(self):
        data = figure4(frameworks=("native", "socialite"),
                       algorithms=("bfs",), node_counts=(1, 4))
        curves = data["bfs"]
        assert curves["native"][4] > 0
        assert curves["socialite"][4] > curves["native"][4]
        rendered = report.render_scaling_curves(data, "test")
        assert "socialite" in rendered

    def test_figure6_narrowed(self):
        data = figure6(frameworks=("native", "giraph"),
                       algorithms=("pagerank",), nodes=2)
        panel = data["pagerank"]
        assert panel["giraph"]["network_bytes_sent"] == pytest.approx(100.0)
        assert panel["native"]["cpu_utilization"] > \
            panel["giraph"]["cpu_utilization"]

    def test_figure7_ladder_shape(self):
        data = figure7(algorithms=("pagerank",), nodes=2)
        ladder = data["pagerank"]
        assert ladder[0] == ("baseline", 1.0)
        assert ladder[-1][1] > 2.0
        rendered = report.render_figure7(data)
        assert "prefetching" in rendered


class TestScaleInvariance:
    """The weak-scaling *shape* must not depend on the proxy edge budget.

    This is the property that justifies extrapolating 16k-edge/node
    proxies to the paper's 128M-edge/node runs (DESIGN.md Section 2).
    """

    def test_pagerank_node_scaling_ratio_stable(self):
        from repro.datagen import rmat_graph
        from repro.harness import run_experiment

        ratios = []
        for scale, factor in ((10, 8000.0), (12, 2000.0)):
            graph = rmat_graph(scale, edge_factor=16, seed=5)
            t1 = run_experiment("pagerank", "native", graph, nodes=1,
                                scale_factor=factor, iterations=3).runtime()
            t4 = run_experiment("pagerank", "native", graph, nodes=4,
                                scale_factor=factor, iterations=3).runtime()
            ratios.append(t4 / t1)
        # The 4-node/1-node degradation agrees within 40% across a 4x
        # change in proxy size.
        assert ratios[0] == pytest.approx(ratios[1], rel=0.4)


class TestReportRendering:
    def test_render_rows_alignment(self):
        rows = [{"a": "x", "b": 1}, {"a": "longer", "b": 22}]
        text = report.render_rows(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "longer" in lines[-1]

    def test_render_slowdown_handles_failures(self):
        data = {"tc": {"combblas": {"slowdown": float("nan"),
                                    "statuses": ["out-of-memory"]}}}
        text = report.render_slowdown_table(data, "T")
        assert "out-of-mem" in text

    def test_format_cell(self):
        assert report._format_cell(None).strip() == "-"
        assert report._format_cell(float("nan")).strip() == "n/a"
        assert report._format_cell(123.4).strip() == "123"
        assert report._format_cell(3.21).strip() == "3.2"
        assert report._format_cell(0.0123).strip() == "0.0123"
