"""Tests for graph statistics and edge-list persistence."""

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    CSRGraph,
    EdgeList,
    RatingsMatrix,
    count_triangles_exact,
    degree_histogram,
    fit_power_law,
    gini_coefficient,
    tail_distance,
)
from repro.graph.io import (
    load_edgelist_npz,
    load_edgelist_text,
    load_ratings_npz,
    save_edgelist_npz,
    save_edgelist_text,
    save_ratings_npz,
)


class TestProperties:
    def test_degree_histogram_ignores_isolated(self):
        values, counts = degree_histogram([0, 0, 1, 1, 3])
        np.testing.assert_array_equal(values, [1, 3])
        np.testing.assert_array_equal(counts, [2, 1])

    def test_degree_histogram_empty(self):
        values, counts = degree_histogram([0, 0])
        assert values.size == 0 and counts.size == 0

    def test_power_law_fit_recovers_exponent(self):
        rng = np.random.default_rng(7)
        alpha_true = 2.5
        # Inverse-CDF sampling of a discrete power law with xmin=5.
        u = rng.random(50_000)
        degrees = np.floor(5 * (1 - u) ** (-1 / (alpha_true - 1))).astype(int)
        fit = fit_power_law(degrees, xmin=5)
        # Flooring continuous samples biases the discrete MLE slightly low,
        # so allow a 0.15 band around the true exponent.
        assert abs(fit.alpha - alpha_true) < 0.15

    def test_power_law_fit_rejects_empty(self):
        with pytest.raises(ValueError):
            fit_power_law([])

    def test_gini_uniform_vs_skewed(self):
        uniform = np.full(1000, 10)
        skewed = np.concatenate([np.full(990, 1), np.full(10, 1000)])
        assert gini_coefficient(uniform) < 0.01
        assert gini_coefficient(skewed) > 0.8

    def test_gini_empty(self):
        assert gini_coefficient([]) == 0.0

    def test_tail_distance_identical_is_zero(self):
        degrees = np.arange(1, 1000)
        assert tail_distance(degrees, degrees) == 0.0

    def test_tail_distance_detects_difference(self):
        light = np.full(1000, 2)
        heavy = np.concatenate([np.full(900, 2), np.full(100, 2000)])
        assert tail_distance(light, heavy) > 0.5

    def test_count_triangles_exact(self):
        # Two triangles sharing the edge (1,2): {0,1,2} and {1,2,3}.
        pairs = [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)]
        graph = CSRGraph.from_edges(EdgeList.from_pairs(4, pairs).orient_by_id())
        assert count_triangles_exact(graph) == 2

    def test_count_triangles_none(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)]).orient_by_id()
        )
        assert count_triangles_exact(graph) == 0


class TestIO:
    def test_text_round_trip(self, tmp_path):
        edges = EdgeList.from_pairs(5, [(0, 1), (3, 4)])
        path = tmp_path / "graph.txt"
        save_edgelist_text(path, edges)
        loaded = load_edgelist_text(path)
        assert loaded.num_vertices == 5
        np.testing.assert_array_equal(loaded.src, edges.src)
        np.testing.assert_array_equal(loaded.dst, edges.dst)
        assert loaded.weights is None

    def test_text_round_trip_weighted(self, tmp_path):
        edges = EdgeList(3, np.array([0, 1]), np.array([1, 2]),
                         weights=np.array([0.5, 2.25]))
        path = tmp_path / "weighted.txt"
        save_edgelist_text(path, edges)
        loaded = load_edgelist_text(path)
        np.testing.assert_allclose(loaded.weights, edges.weights)

    def test_text_num_vertices_override(self, tmp_path):
        path = tmp_path / "plain.txt"
        path.write_text("0 1\n1 2\n")
        loaded = load_edgelist_text(path, num_vertices=10)
        assert loaded.num_vertices == 10
        inferred = load_edgelist_text(path)
        assert inferred.num_vertices == 3

    def test_text_bad_columns(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 2 3\n")
        with pytest.raises(GraphFormatError):
            load_edgelist_text(path)

    def test_npz_round_trip(self, tmp_path):
        edges = EdgeList.from_pairs(4, [(0, 3), (2, 1)])
        path = tmp_path / "graph.npz"
        save_edgelist_npz(path, edges)
        loaded = load_edgelist_npz(path)
        assert loaded.num_vertices == 4
        np.testing.assert_array_equal(loaded.pairs(), edges.pairs())

    def test_ratings_round_trip(self, tmp_path):
        ratings = RatingsMatrix(3, 2, [0, 1, 2], [0, 1, 0], [5.0, 3.0, 1.0])
        path = tmp_path / "ratings.npz"
        save_ratings_npz(path, ratings)
        loaded = load_ratings_npz(path)
        assert loaded.num_users == 3 and loaded.num_items == 2
        np.testing.assert_allclose(loaded.ratings, ratings.ratings)


class TestRatingsMatrix:
    def test_by_user_by_item_views(self):
        ratings = RatingsMatrix(2, 3, [0, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ratings.by_user().neighbors(0), [0, 2])
        np.testing.assert_array_equal(ratings.by_item().neighbors(1), [1])
        np.testing.assert_array_equal(ratings.by_user().neighbor_weights(0), [1.0, 2.0])

    def test_degrees(self):
        ratings = RatingsMatrix(2, 3, [0, 0, 1], [0, 2, 1], [1.0, 2.0, 3.0])
        np.testing.assert_array_equal(ratings.user_degrees(), [2, 1])
        np.testing.assert_array_equal(ratings.item_degrees(), [1, 1, 1])

    def test_split_partitions_all_ratings(self):
        rng = np.random.default_rng(0)
        n = 1000
        ratings = RatingsMatrix(
            100, 50,
            rng.integers(0, 100, n), rng.integers(0, 50, n),
            rng.random(n),
        )
        train, held = ratings.split(rng, holdout_fraction=0.2)
        assert train.num_ratings + held.num_ratings == n
        assert 100 < held.num_ratings < 300

    def test_split_validates_fraction(self):
        ratings = RatingsMatrix(1, 1, [0], [0], [1.0])
        with pytest.raises(ValueError):
            ratings.split(np.random.default_rng(0), holdout_fraction=1.5)

    def test_id_range_validation(self):
        with pytest.raises(GraphFormatError):
            RatingsMatrix(2, 2, [0, 2], [0, 1], [1.0, 2.0])
