"""Tests: KDT front-end, uniform generators, interpreter cross-validation."""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.datagen.uniform import (
    erdos_renyi_graph,
    ring_lattice_graph,
    watts_strogatz_graph,
)
from repro.frameworks.base import GIRAPH
from repro.frameworks.matrix import combblas, kdt
from repro.frameworks.vertex import (
    BSPEngine,
    PageRankVertexProgram,
    run_vertex_program,
)
from repro.graph import gini_coefficient


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=101)


def make_cluster(nodes=1, **kwargs):
    return Cluster(paper_cluster(nodes), **kwargs)


class TestKDT:
    def test_pagerank_matches_reference(self, graph_small):
        result = kdt.pagerank(graph_small, make_cluster(2), iterations=3)
        np.testing.assert_allclose(result.values,
                                   pagerank_reference(graph_small, 3),
                                   rtol=1e-10)
        assert result.framework == "kdt"

    def test_bfs_matches_reference(self):
        graph = rmat_graph(scale=9, edge_factor=6, seed=102, directed=False)
        result = kdt.bfs(graph, make_cluster(2))
        np.testing.assert_array_equal(result.values, bfs_reference(graph, 0))

    def test_triangles_match_reference(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=103)
        result = kdt.triangle_count(graph, make_cluster(2))
        assert result.values == triangle_count_reference(graph)

    def test_callback_ops_cost_more_than_builtin(self, graph_small):
        """KDT's published shape: near-1x on built-in semirings,
        multiple-x on callback-bearing kernels (BFS's filter)."""
        scale = 1e4
        graph = rmat_graph(scale=9, edge_factor=6, seed=102, directed=False)
        source = int(np.argmax(graph.out_degrees()))

        cb_pr = combblas.pagerank(graph_small,
                                  make_cluster(2, scale_factor=scale),
                                  iterations=3)
        kdt_pr = kdt.pagerank(graph_small,
                              make_cluster(2, scale_factor=scale),
                              iterations=3)
        pagerank_ratio = (kdt_pr.metrics.total_time_s
                          / cb_pr.metrics.total_time_s)

        cb_bfs = combblas.bfs(graph, make_cluster(2, scale_factor=scale),
                              source=source)
        kdt_bfs = kdt.bfs(graph, make_cluster(2, scale_factor=scale),
                          source=source)
        bfs_ratio = kdt_bfs.metrics.total_time_s / cb_bfs.metrics.total_time_s

        assert pagerank_ratio < 1.5
        assert bfs_ratio > 1.5
        assert bfs_ratio > pagerank_ratio


class TestUniformGenerators:
    def test_erdos_renyi_sizes(self):
        graph = erdos_renyi_graph(1000, 8000, seed=1)
        assert graph.num_vertices == 1000
        assert 6000 < graph.num_edges <= 8000  # dedup/self-loop losses

    def test_erdos_renyi_low_skew(self):
        uniform = erdos_renyi_graph(4096, 64 * 1024, seed=2)
        skewed = rmat_graph(scale=12, edge_factor=16, seed=2)
        assert gini_coefficient(uniform.out_degrees()) < \
            0.5 * gini_coefficient(skewed.out_degrees())

    def test_ring_lattice_is_regular(self):
        graph = ring_lattice_graph(100, degree=6)
        np.testing.assert_array_equal(graph.out_degrees(), 6)
        assert gini_coefficient(graph.out_degrees()) == 0.0

    def test_ring_lattice_degree_clamped(self):
        graph = ring_lattice_graph(4, degree=10)
        assert graph.out_degrees().max() == 3

    def test_watts_strogatz_interpolates(self):
        lattice = watts_strogatz_graph(512, degree=8, rewire_probability=0.0)
        np.testing.assert_array_equal(lattice.out_degrees(), 8)
        rewired = watts_strogatz_graph(512, degree=8,
                                       rewire_probability=0.5, seed=3)
        assert rewired.num_edges <= lattice.num_edges  # dedup losses only
        assert gini_coefficient(rewired.out_degrees()) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(0, 10)
        with pytest.raises(ValueError):
            ring_lattice_graph(1)
        with pytest.raises(ValueError):
            watts_strogatz_graph(10, rewire_probability=2.0)


class TestInterpreterCrossValidation:
    """The literal Pregel interpreter's counted messages must agree with
    the vectorized engine's analytic accounting."""

    def test_pagerank_message_counts_agree(self):
        graph = rmat_graph(scale=7, edge_factor=5, seed=104)
        iterations = 3
        _, _, stats = run_vertex_program(
            PageRankVertexProgram(iterations=iterations), graph,
            max_supersteps=iterations + 1, collect_stats=True,
        )
        # Interpreter: every superstep 0..iterations-1 sends one message
        # per out-edge of every vertex.
        for sent in stats["messages_per_superstep"][:iterations]:
            assert sent == graph.num_edges

        # Engine (uncombined, Giraph semantics): same per-superstep count.
        engine = BSPEngine(graph, Cluster(paper_cluster(2)), GIRAPH, "1d")
        exchange = engine.edge_messages(
            np.arange(graph.num_vertices), 8.0, combine=False
        )
        assert exchange.messages == graph.num_edges

    def test_bfs_computes_track_frontier(self):
        from repro.frameworks.vertex import BFSVertexProgram

        graph = rmat_graph(scale=7, edge_factor=5, seed=105, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        values, supersteps, stats = run_vertex_program(
            BFSVertexProgram(source=source), graph, collect_stats=True
        )
        distances = bfs_reference(graph, source)
        # Superstep s computes exactly the vertices that receive messages
        # plus initial actives: bounded below by the true frontier size.
        for level in range(min(supersteps, 4)):
            frontier = int((distances == level).sum())
            assert stats["computes_per_superstep"][level] >= frontier
