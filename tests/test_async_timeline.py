"""Tests for the async vertex engine and the timeline analyzer."""

import numpy as np
import pytest

from repro.cluster import paper_cluster
from repro.cluster.timeline import analyze, render_timeline
from repro.datagen import rmat_graph
from repro.frameworks.vertex.async_engine import (
    AsyncScheduler,
    pagerank_delta_async,
    pagerank_sync_to_tolerance,
)


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=95)


class TestAsyncScheduler:
    def test_priority_order(self):
        scheduler = AsyncScheduler()
        scheduler.push(1, 0.5)
        scheduler.push(2, 2.0)
        scheduler.push(3, 1.0)
        assert scheduler.pop()[0] == 2
        assert scheduler.pop()[0] == 3
        assert scheduler.pop()[0] == 1
        assert scheduler.pop() is None

    def test_reprioritize_upwards_only(self):
        scheduler = AsyncScheduler()
        scheduler.push(1, 1.0)
        scheduler.push(1, 0.1)   # lower: ignored
        scheduler.push(1, 3.0)   # higher: wins
        vertex, priority = scheduler.pop()
        assert vertex == 1 and priority == 3.0
        assert not scheduler

    def test_len(self):
        scheduler = AsyncScheduler()
        scheduler.push(1, 1.0)
        scheduler.push(2, 1.0)
        assert len(scheduler) == 2


class TestAsyncPageRank:
    def test_matches_synchronous_fixpoint(self, graph_small):
        tolerance = 1e-7
        async_ranks, stats = pagerank_delta_async(graph_small,
                                                  tolerance=tolerance)
        sync_ranks, _, _ = pagerank_sync_to_tolerance(graph_small,
                                                      tolerance=tolerance)
        np.testing.assert_allclose(async_ranks, sync_ranks, atol=1e-4)
        assert stats.max_residual <= tolerance

    def test_fewer_updates_than_synchronous(self, graph_small):
        tolerance = 1e-6
        _, stats = pagerank_delta_async(graph_small, tolerance=tolerance)
        _, _, sync_updates = pagerank_sync_to_tolerance(graph_small,
                                                        tolerance=tolerance)
        # The asynchronous scheduler concentrates work on vertices whose
        # rank is still moving — the autonomous-scheduling advantage
        # [24] studies.
        assert stats.updates < 0.7 * sync_updates

    def test_respects_update_budget(self, graph_small):
        _, stats = pagerank_delta_async(graph_small, tolerance=1e-12,
                                        max_updates=50)
        assert stats.updates == 50

    def test_empty_graph(self):
        from repro.graph import CSRGraph, EdgeList

        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, []))
        ranks, stats = pagerank_delta_async(graph)
        np.testing.assert_allclose(ranks, 0.3)
        assert stats.updates == 0


class TestTimeline:
    def _run(self, nodes=4):
        from repro.harness import run_experiment

        graph = rmat_graph(scale=9, edge_factor=6, seed=96, directed=False)
        source = int(np.argmax(graph.out_degrees()))
        return run_experiment("bfs", "giraph", graph, nodes=nodes,
                              scale_factor=1e3, source=source)

    def test_analyze_decomposition_sums_to_one(self):
        metrics = self._run().metrics()
        report = analyze(metrics)
        total = (report.compute_fraction + report.comm_fraction
                 + report.overhead_fraction)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_giraph_bfs_is_overhead_bound(self):
        # Small frontiers + 0.9 s Hadoop supersteps: the timeline must
        # blame fixed overhead, matching the paper's Giraph analysis.
        report = analyze(self._run().metrics())
        assert report.dominant == "overhead"
        assert "scheduling" in report.recommendation()

    def test_native_pagerank_is_compute_bound(self):
        from repro.harness import run_experiment

        graph = rmat_graph(scale=9, edge_factor=6, seed=96)
        run = run_experiment("pagerank", "native", graph, nodes=1,
                             scale_factor=1e3, iterations=3)
        report = analyze(run.metrics())
        assert report.dominant == "compute"
        assert "prefetch" in report.recommendation()

    def test_render_timeline(self):
        metrics = self._run(nodes=2).metrics()
        text = render_timeline(metrics, width=30, max_rows=5)
        assert "supersteps" in text
        assert "dominant:" in text
        assert "advice:" in text

    def test_render_empty(self):
        from repro.cluster import RunMetrics

        assert "no supersteps" in render_timeline(RunMetrics(num_nodes=1))
