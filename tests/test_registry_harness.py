"""Tests for the algorithm registry and the experiment harness."""

import numpy as np
import pytest

from repro.algorithms.registry import ALGORITHMS, FRAMEWORKS, runner
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.errors import ReproError
from repro.harness import (
    STATUS_OK,
    STATUS_OOM,
    STATUS_UNSUPPORTED,
    run_experiment,
)
from repro.harness.datasets import (
    scale_factor_for,
    single_node_graph,
    weak_scaling_dataset,
)


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=61)


class TestRegistry:
    def test_all_combinations_resolve(self):
        for algorithm in ALGORITHMS:
            for framework in FRAMEWORKS:
                assert callable(runner(algorithm, framework))

    def test_unknown_algorithm(self):
        with pytest.raises(ReproError, match="unknown algorithm") as info:
            runner("ssps", "native")
        assert "sssp" in str(info.value)

    def test_unknown_framework(self):
        with pytest.raises(ReproError, match="unknown framework"):
            runner("bfs", "spark")


class TestRunExperiment:
    def test_ok_run(self, graph_small):
        result = run_experiment("pagerank", "native", graph_small, nodes=2,
                                iterations=3)
        assert result.ok
        assert result.status == STATUS_OK
        assert result.runtime() > 0
        assert result.metrics().num_iterations == 3

    def test_galois_multinode_unsupported(self, graph_small):
        result = run_experiment("pagerank", "galois", graph_small, nodes=4,
                                iterations=2)
        assert result.status == STATUS_UNSUPPORTED
        assert not result.ok
        with pytest.raises(ReproError):
            result.runtime()

    def test_oom_classified(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=62)
        result = run_experiment("triangle_counting", "combblas", graph,
                                nodes=2, scale_factor=1e9)
        assert result.status == STATUS_OOM
        assert "out of memory" in result.failure

    def test_scale_factor_scales_runtime(self, graph_small):
        small = run_experiment("pagerank", "native", graph_small,
                               scale_factor=1.0, iterations=2)
        big = run_experiment("pagerank", "native", graph_small,
                             scale_factor=1000.0, iterations=2)
        assert big.runtime() > 100 * small.runtime()


class TestHarnessDatasets:
    def test_weak_scaling_grows_with_nodes(self):
        data1, f1 = weak_scaling_dataset("pagerank", 1)
        data4, f4 = weak_scaling_dataset("pagerank", 4)
        assert 3 <= data4.num_edges / data1.num_edges <= 5
        # Edges per node constant => same extrapolation factor.
        assert f4 == pytest.approx(f1, rel=0.3)

    def test_triangle_scale_superlinear(self):
        linear = scale_factor_for("pagerank", 1e6, 1e3)
        tc = scale_factor_for("triangle_counting", 1e6, 1e3)
        assert tc > linear
        assert tc == pytest.approx(1000 ** 1.25)

    def test_single_node_graph_variants(self):
        directed = single_node_graph("rmat_mini", "pagerank")
        undirected = single_node_graph("rmat_mini", "bfs")
        oriented = single_node_graph("rmat_mini", "triangle_counting")
        assert np.all(oriented.sources() < oriented.targets)
        assert undirected.num_edges > directed.num_edges  # symmetrized

    def test_weak_scaling_ratings(self):
        data, factor = weak_scaling_dataset("collaborative_filtering", 2)
        assert data.num_ratings > 0
        assert factor > 1


class TestPaperShapeInvariants:
    """The qualitative claims of the paper that every release must keep."""

    def test_native_is_fastest_single_node(self, graph_small):
        native = run_experiment("pagerank", "native", graph_small,
                                scale_factor=1e4, iterations=2)
        for framework in ("combblas", "graphlab", "socialite", "giraph",
                          "galois"):
            other = run_experiment("pagerank", framework, graph_small,
                                   scale_factor=1e4, iterations=2)
            assert other.runtime() >= native.runtime() * 0.99, framework

    def test_giraph_orders_of_magnitude_off(self, graph_small):
        native = run_experiment("pagerank", "native", graph_small,
                                scale_factor=1e4, iterations=2)
        giraph = run_experiment("pagerank", "giraph", graph_small,
                                scale_factor=1e4, iterations=2)
        assert giraph.runtime() > 20 * native.runtime()

    def test_galois_close_to_native(self, graph_small):
        native = run_experiment("pagerank", "native", graph_small,
                                scale_factor=1e4, iterations=2)
        galois = run_experiment("pagerank", "galois", graph_small,
                                scale_factor=1e4, iterations=2)
        assert galois.runtime() < 2.0 * native.runtime()
