"""Tests for repro.perf: roofline, attribution, advisor, regression gate."""

import json

import pytest

from repro import perf
from repro.cli import main
from repro.cluster.metrics import RunMetrics
from repro.errors import PerfRegression, ReproError
from repro.harness.datasets import weak_scaling_dataset
from repro.harness.runner import run_experiment
from repro.observability import Tracer
from repro.perf import (
    GateReport,
    Roofline,
    advise_cell,
    attribute,
    attribute_cell,
    cell_key,
    classify,
    parse_injection,
    roofline_of,
    roofline_of_run,
    roofline_table,
)


def run_cell(algorithm, framework, nodes, **kwargs):
    data, factor = weak_scaling_dataset(algorithm, nodes)
    return run_experiment(algorithm, framework, data, nodes=nodes,
                          scale_factor=factor, **kwargs)


class TestRoofline:
    def test_native_within_paper_band(self):
        # The acceptance criterion: achieved/bound lands in the paper's
        # "within 2-2.5x of the hardware limit" band for every workload
        # at 1 and 4 nodes.
        from repro.algorithms.registry import ALGORITHMS

        table = roofline_table("native")
        assert set(table) == set(ALGORITHMS)
        for algorithm, per_nodes in table.items():
            for nodes, cell in per_nodes.items():
                assert cell["status"] == "ok", (algorithm, nodes)
                assert 1.0 <= cell["ratio"] <= 2.5, (algorithm, nodes, cell)
                assert cell["bound_s"] == pytest.approx(max(
                    cell["memory_floor_s"], cell["cpu_floor_s"],
                    cell["wire_floor_s"]))

    def test_framework_ratio_reflects_inefficiency(self):
        # A framework run moves more bytes and wastes cores, so its
        # achieved time sits far above the same hardware's floor.
        run = run_cell("bfs", "giraph", 4)
        assert roofline_of_run(run).ratio > 5.0

    def test_binding_and_ratio_properties(self):
        roofline = Roofline(memory_floor_s=2.0, cpu_floor_s=1.0,
                            wire_floor_s=3.0, achieved_s=6.0)
        assert roofline.bound_s == 3.0
        assert roofline.binding == "network"
        assert roofline.ratio == pytest.approx(2.0)

    def test_empty_run_has_unit_ratio(self):
        roofline = Roofline(memory_floor_s=0.0, cpu_floor_s=0.0,
                            wire_floor_s=0.0, achieved_s=0.0)
        assert roofline.ratio == 1.0

    def test_fallback_without_per_node_counters(self):
        # Metrics reconstructed without per-node arrays (e.g. from a
        # trace) still get a roofline: perfectly-balanced floors.
        metrics = RunMetrics(num_nodes=2, total_time_s=10.0,
                             streamed_bytes_total=86e9 * 2,
                             random_bytes_total=0.0, ops_total=0.0,
                             bytes_sent_total=0.0)
        roofline = roofline_of(metrics)
        assert roofline.memory_floor_s == pytest.approx(1.0)
        assert roofline.imbalance == 1.0
        assert roofline.ratio == pytest.approx(10.0)

    def test_imbalance_reported_for_skewed_partitions(self):
        # Triangle counting at 4 nodes is the known skewed cell: RMAT
        # hub vertices pile counted bytes onto one node. The
        # critical-node bound exposes that as imbalance > 1 while the
        # achieved/bound ratio stays ~1 (the run really is limited by
        # the overloaded node's DRAM).
        run = run_cell("triangle_counting", "native", 4)
        roofline = roofline_of_run(run)
        assert roofline.imbalance > 1.5
        assert roofline.ratio < 1.5


class TestAttribution:
    def test_factors_multiply_to_gap_exactly(self):
        # The acceptance criterion asks within 10%; the telescoping
        # construction makes it exact to floating point.
        attribution = attribute_cell("bfs", "giraph", nodes=4)
        assert attribution.product() == pytest.approx(attribution.gap,
                                                      rel=1e-9)
        assert attribution.gap > 100  # the paper's worst cell (~560x)

    def test_factor_names_and_details(self):
        attribution = attribute_cell("bfs", "giraph", nodes=4)
        names = [factor.name for factor in attribution.factors]
        assert names == ["superstep-overhead", "network", "compute"]
        compute = attribution.factors[2]
        # The paper's 4-of-24 worker occupancy: 6x for Giraph.
        assert compute.detail["occupancy"] == pytest.approx(6.0)
        assert compute.detail["ops_inflation"] > 1.0
        network = attribution.factors[1]
        # Per-edge overhead bytes: Giraph serializes fat messages.
        assert network.detail["wire_bytes_ratio"] > 10.0

    def test_exact_for_every_gate_framework(self):
        for framework in ("combblas", "graphlab", "giraph"):
            attribution = attribute_cell("pagerank", framework, nodes=4)
            assert attribution.product() == pytest.approx(
                attribution.gap, rel=1e-9), framework
            assert attribution.gap >= 1.0

    def test_attribution_lands_in_trace(self):
        tracer = Tracer()
        attribute_cell("bfs", "giraph", nodes=4, trace=tracer)
        assert len(tracer.spans_named("perf-attribution")) == 1
        assert len(tracer.spans_named("perf-factor")) == 3

    def test_attribute_accepts_run_results(self):
        framework_run = run_cell("bfs", "graphlab", 4)
        native_run = run_cell("bfs", "native", 4)
        attribution = attribute(framework_run, native_run)
        assert attribution.framework == "graphlab"
        assert attribution.product() == pytest.approx(attribution.gap,
                                                      rel=1e-9)


class TestClassification:
    def make_metrics(self, compute=0.0, memory=0.0, cpu=0.0, comm=0.0,
                     overhead=0.0, total=None):
        if total is None:
            total = compute + comm + overhead
        return RunMetrics(num_nodes=1, total_time_s=total,
                          compute_time_s=compute, memory_time_s=memory,
                          cpu_time_s=cpu, overhead_time_s=overhead)

    def test_latency_bound_when_fixed_dominates(self):
        metrics = self.make_metrics(compute=1.0, overhead=2.0)
        assert classify(metrics) == "latency"

    def test_network_bound_when_exposed_comm_beats_compute(self):
        metrics = self.make_metrics(compute=1.0, comm=2.0)
        assert classify(metrics) == "network"

    def test_memory_vs_compute_split(self):
        assert classify(self.make_metrics(compute=2.0, memory=2.0,
                                          cpu=1.0)) == "memory"
        assert classify(self.make_metrics(compute=2.0, memory=1.0,
                                          cpu=2.0)) == "compute"

    def test_every_real_run_gets_a_class(self):
        for framework in ("native", "giraph"):
            run = run_cell("bfs", framework, 4)
            assert classify(run.metrics()) in ("compute", "memory",
                                               "network", "latency")


class TestAdvisor:
    def test_ranked_and_complete(self):
        advice = advise_cell("bfs", nodes=4)
        options = [item.option for item in advice]
        assert set(options) == {"prefetch", "compression", "overlap",
                                "bitvector", "all"}
        speedups = [item.speedup for item in advice]
        assert speedups == sorted(speedups, reverse=True)

    def test_all_options_dominate_singles(self):
        advice = {item.option: item for item in advise_cell("bfs", nodes=4)}
        singles = [item.speedup for option, item in advice.items()
                   if option != "all"]
        assert advice["all"].speedup >= max(singles)
        assert all(speedup >= 1.0 for speedup in singles)

    def test_predictions_match_simulated_runs(self):
        advice = {item.option: item for item in advise_cell("bfs", nodes=1)}
        # The advisor's prediction IS a simulated run with the option
        # on, so speedup must equal baseline/predicted exactly.
        for item in advice.values():
            assert item.speedup == pytest.approx(
                item.baseline_s / item.predicted_s)

    def test_rationale_mentions_measured_quantities(self):
        advice = {item.option: item for item in advise_cell("bfs", nodes=4)}
        assert "random" in advice["prefetch"].rationale
        assert "MB/node" in advice["compression"].rationale
        assert "exposed" in advice["overlap"].rationale


class TestBaselineGate:
    CONFIG = dict(algorithms=("bfs",), frameworks=("native", "giraph"),
                  node_counts=(1,))

    def test_record_then_check_passes(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        payload = perf.record(path, **self.CONFIG)
        assert payload["cells"][cell_key("bfs", "giraph", 1)]["status"] == "ok"
        report = perf.check(path)
        assert report.ok
        assert len(report.checks) == 2
        report.raise_if_failed()  # must not raise

    def test_rerecord_is_byte_identical(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        perf.record(first, **self.CONFIG)
        perf.record(second, **self.CONFIG)
        assert first.read_bytes() == second.read_bytes()

    def test_injected_slowdown_fails_and_names_cell(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.record(path, **self.CONFIG)
        report = perf.check(path, inject="bfs/giraph=2.0")
        assert not report.ok
        regressed = {check.cell for check in report.regressions}
        assert regressed == {cell_key("bfs", "giraph", 1)}
        assert report.regressions[0].ratio == pytest.approx(2.0)
        with pytest.raises(PerfRegression) as excinfo:
            report.raise_if_failed()
        assert "bfs/giraph/1" in str(excinfo.value)
        assert excinfo.value.report is report

    def test_tolerance_absorbs_small_drift(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.record(path, **self.CONFIG)
        assert perf.check(path, tolerance=0.05, inject="bfs=1.04").ok
        assert not perf.check(path, tolerance=0.05, inject="bfs=1.06").ok

    def test_speedup_reports_improvement_not_failure(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.record(path, **self.CONFIG)
        report = perf.check(path, inject="bfs/native=0.5")
        assert report.ok
        assert {check.cell for check in report.improvements} == \
            {cell_key("bfs", "native", 1)}

    def test_missing_baseline_raises(self, tmp_path):
        with pytest.raises(ReproError, match="no perf baseline"):
            perf.check(tmp_path / "absent.json")

    def test_non_baseline_file_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ReproError, match="not a perf baseline"):
            perf.load_baseline(path)

    def test_parse_injection(self):
        assert parse_injection(None) == {}
        assert parse_injection("bfs/giraph=2.0; pagerank=1.5") == \
            {"bfs/giraph": 2.0, "pagerank": 1.5}
        assert parse_injection({"bfs": 3}) == {"bfs": 3.0}
        with pytest.raises(ReproError, match="expected 'pattern=factor'"):
            parse_injection("bfs/giraph")

    def test_report_to_dict_roundtrips_through_json(self, tmp_path):
        path = tmp_path / "BENCH_perf.json"
        perf.record(path, **self.CONFIG)
        report = perf.check(path, inject="bfs/giraph=2.0")
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["ok"] is False
        assert payload["regressions"][0]["cell"] == "bfs/giraph/1"

    def test_empty_report_is_ok(self):
        assert GateReport(path="x", tolerance=0.05).ok


class TestPerfCLI:
    def test_analyze(self, capsys):
        code = main(["perf", "analyze", "--framework", "native",
                     "--algorithms", "bfs", "--nodes", "1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Roofline" in out and "bfs" in out

    def test_analyze_framework_includes_attribution(self, capsys):
        code = main(["perf", "analyze", "--framework", "giraph",
                     "--algorithms", "bfs", "--nodes", "4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "product of factors" in out

    def test_analyze_json(self, capsys):
        code = main(["perf", "analyze", "--framework", "native",
                     "--algorithms", "bfs", "--nodes", "1", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["roofline"]["bfs"]["1"]["ratio"] >= 1.0

    def test_advise(self, capsys):
        code = main(["perf", "advise", "bfs", "--nodes", "1"])
        assert code == 0
        assert "speedup" in capsys.readouterr().out

    def test_baseline_record_check_and_gate_exit_code(self, tmp_path,
                                                      capsys):
        path = tmp_path / "BENCH_perf.json"
        args = ["--algorithms", "bfs", "--frameworks", "native,giraph",
                "--nodes", "1"]
        assert main(["perf", "baseline", "record", "--out", str(path)]
                    + args) == 0
        assert path.exists()
        assert main(["perf", "baseline", "check", "--baseline",
                     str(path)]) == 0
        # The injected slowdown must flip the exit code to 7 (the
        # perf-gate failure class) and the report must name the cell.
        code = main(["perf", "baseline", "check", "--baseline", str(path),
                     "--inject", "bfs/giraph=2.0"])
        assert code == 7
        assert "bfs/giraph/1" in capsys.readouterr().out

    def test_baseline_list_enumerates_registry(self, capsys):
        pytest.importorskip("benchmarks.conftest")
        assert main(["perf", "baseline", "list"]) == 0
        out = capsys.readouterr().out
        assert "table4" in out and "perf_model" in out

    def test_baseline_list_json(self, capsys):
        pytest.importorskip("benchmarks.conftest")
        assert main(["perf", "baseline", "list", "--json"]) == 0
        registry = json.loads(capsys.readouterr().out)
        assert "serve_loadgen" in registry
        entry = registry["serve_loadgen"]
        assert entry["artifact"] == "BENCH_serve.json"
        assert entry["producer"].endswith("bench_serve.produce")

    def test_serve_section_passes_through_check(self, tmp_path, capsys):
        from repro.perf.baselines import check, record

        path = tmp_path / "BENCH_serve.json"
        serve = {"advisory": True,
                 "loadgen": {"requests": 50, "completed": 50, "failed": 0,
                             "throughput_rps": 20.0,
                             "latency_s": {"p50_s": 0.05, "p99_s": 0.2}},
                 "warm_cold": {"min_speedup": 3.5,
                               "cache_hits": {"total": 9, "pinned": 9}}}
        payload = record(path=path, algorithms=("bfs",),
                         frameworks=("native",), node_counts=(1,),
                         serve=serve)
        assert payload["serve"] == serve

        # check() must pass the recorded load report through verbatim
        # (advisory: it never re-drives a server) and keep gating the
        # deterministic cells alongside it.
        report = check(path=path)
        assert report.ok
        assert report.serve == serve
        assert report.to_dict()["serve"] == serve

        assert main(["perf", "baseline", "check", "--baseline",
                     str(path)]) == 0
        out = capsys.readouterr().out
        assert "serve" in out and "50/50 ok" in out and "advisory" in out
        assert "warm/cold 3.5x" in out

    def test_exit_code_documented(self, capsys):
        with pytest.raises(SystemExit):
            main(["--help"])
        assert "7" in capsys.readouterr().out


class TestOverBusyAccounting:
    """Satellite: cpu_utilization no longer hides accounting bugs."""

    def test_raw_ratio_exposed_unclamped(self):
        metrics = RunMetrics(num_nodes=1, busy_core_seconds=30.0,
                             total_core_seconds=24.0)
        assert metrics.raw_cpu_utilization == pytest.approx(1.25)

    def test_over_busy_warns_once_and_clamps(self):
        metrics = RunMetrics(num_nodes=1, busy_core_seconds=30.0,
                             total_core_seconds=24.0)
        with pytest.warns(RuntimeWarning, match="exceeds capacity"):
            assert metrics.cpu_utilization == 1.0
        # The warning fires once per run, not on every read.
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert metrics.cpu_utilization == 1.0

    def test_normal_run_neither_warns_nor_clamps(self):
        metrics = RunMetrics(num_nodes=1, busy_core_seconds=12.0,
                             total_core_seconds=24.0)
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert metrics.cpu_utilization == pytest.approx(0.5)
            assert metrics.raw_cpu_utilization == metrics.cpu_utilization

    def test_real_runs_stay_within_capacity(self):
        run = run_cell("pagerank", "giraph", 4)
        metrics = run.metrics()
        assert metrics.raw_cpu_utilization <= 1.0 + 1e-9
