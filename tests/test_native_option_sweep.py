"""Exhaustive sweep of the native optimization toggle space.

All 16 combinations of (prefetch, compression, overlap, bitvector) must
produce identical algorithm outputs, monotone costs along each single
toggle, and sensible metric side-effects. This pins the Figure 7
machinery far beyond the ladder the paper plots.
"""

import itertools

import numpy as np
import pytest

from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.frameworks.native import NativeOptions, bfs, pagerank, triangle_count

ALL_OPTIONS = [
    NativeOptions(prefetch=p, compression=c, overlap=o, bitvector=b)
    for p, c, o, b in itertools.product((False, True), repeat=4)
]


@pytest.fixture(scope="module")
def graph_directed():
    return rmat_graph(scale=9, edge_factor=8, seed=111)


@pytest.fixture(scope="module")
def graph_undirected():
    return rmat_graph(scale=9, edge_factor=8, seed=111, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=8, edge_factor=8, seed=112)


def run_all(kernel, graph, **kwargs):
    results = {}
    for options in ALL_OPTIONS:
        cluster = Cluster(paper_cluster(4), enforce_memory=False)
        results[options] = kernel(graph, cluster, options=options, **kwargs)
    return results


class TestOutputInvariance:
    def test_pagerank_outputs_identical(self, graph_directed):
        results = run_all(pagerank, graph_directed, iterations=2)
        reference = next(iter(results.values())).values
        for result in results.values():
            np.testing.assert_allclose(result.values, reference)

    def test_bfs_outputs_identical(self, graph_undirected):
        source = int(np.argmax(graph_undirected.out_degrees()))
        results = run_all(bfs, graph_undirected, source=source)
        reference = next(iter(results.values())).values
        for result in results.values():
            np.testing.assert_array_equal(result.values, reference)

    def test_triangle_outputs_identical(self, graph_triangles):
        results = run_all(triangle_count, graph_triangles)
        counts = {result.values for result in results.values()}
        assert len(counts) == 1


class TestMonotonicity:
    """Flipping any single optimization ON never makes things worse."""

    @pytest.mark.parametrize("flag", ["prefetch", "compression", "overlap"])
    def test_pagerank_each_toggle_helps(self, graph_directed, flag):
        for options in ALL_OPTIONS:
            if getattr(options, flag):
                continue
            off = Cluster(paper_cluster(4), enforce_memory=False)
            on = Cluster(paper_cluster(4), enforce_memory=False)
            slow = pagerank(graph_directed, off, iterations=2,
                            options=options)
            fast = pagerank(graph_directed, on, iterations=2,
                            options=options.with_(**{flag: True}))
            assert fast.total_time_s <= slow.total_time_s * 1.001, \
                (flag, options)

    @pytest.mark.parametrize("flag", ["prefetch", "compression", "overlap",
                                      "bitvector"])
    def test_bfs_each_toggle_helps(self, graph_undirected, flag):
        source = int(np.argmax(graph_undirected.out_degrees()))
        for options in ALL_OPTIONS:
            if getattr(options, flag):
                continue
            slow = bfs(graph_undirected,
                       Cluster(paper_cluster(4), enforce_memory=False),
                       source=source, options=options)
            fast = bfs(graph_undirected,
                       Cluster(paper_cluster(4), enforce_memory=False),
                       source=source,
                       options=options.with_(**{flag: True}))
            assert fast.total_time_s <= slow.total_time_s * 1.001, \
                (flag, options)


class TestSideEffects:
    def test_compression_only_touches_wire(self, graph_directed):
        on = pagerank(graph_directed,
                      Cluster(paper_cluster(4), enforce_memory=False),
                      iterations=2, options=NativeOptions())
        off = pagerank(graph_directed,
                       Cluster(paper_cluster(4), enforce_memory=False),
                       iterations=2,
                       options=NativeOptions(compression=False))
        assert on.metrics.bytes_sent_total < off.metrics.bytes_sent_total
        assert on.iterations == off.iterations

    def test_overlap_reduces_buffer_memory(self, graph_triangles):
        blocked = triangle_count(
            graph_triangles, Cluster(paper_cluster(4), enforce_memory=False),
            options=NativeOptions())
        buffered = triangle_count(
            graph_triangles, Cluster(paper_cluster(4), enforce_memory=False),
            options=NativeOptions(overlap=False))
        assert blocked.metrics.memory_footprint_bytes <= \
            buffered.metrics.memory_footprint_bytes

    def test_baseline_is_worst_everywhere(self, graph_directed):
        baseline = pagerank(graph_directed,
                            Cluster(paper_cluster(4), enforce_memory=False),
                            iterations=2,
                            options=NativeOptions.baseline())
        for options in ALL_OPTIONS:
            other = pagerank(graph_directed,
                             Cluster(paper_cluster(4),
                                     enforce_memory=False),
                             iterations=2, options=options)
            assert other.total_time_s <= baseline.total_time_s * 1.001

    def test_figure7_ladder_monotone(self):
        from repro.frameworks.native import FIGURE7_LADDER

        flags_on = [sum([o.prefetch, o.compression, o.overlap, o.bitvector])
                    for _, o in FIGURE7_LADDER]
        assert flags_on == sorted(flags_on)
