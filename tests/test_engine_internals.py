"""Deeper engine-internal tests: datalog evaluator, 2-D matrix engine,
report generator plumbing."""

import numpy as np
import pytest

from repro.errors import ReproError
from repro.frameworks.datalog import (
    AggregateTable,
    Assign,
    Atom,
    Head,
    Rule,
    SocialiteEngine,
    TupleTable,
    Var,
)
from repro.frameworks.matrix import PLUS_TIMES, DistSpMat, ProcessGrid
from repro.graph import CSRGraph, EdgeList


def small_engine():
    engine = SocialiteEngine(num_shards=2, vertex_universe=6)
    engine.add(TupleTable("edge", [np.array([0, 0, 1, 4]),
                                   np.array([1, 2, 3, 5])],
                          num_shards=2, key_universe=6, tail_nested=True))
    return engine


class TestDatalogEvaluatorEdgeCases:
    def test_constant_in_body_atom_filters(self):
        engine = small_engine()
        out = AggregateTable("out", 6, "sum", 2)
        engine.add(out)
        # out(y, $SUM(1)) :- edge(0, y): only vertex 0's edges.
        rule = Rule(head=Head("out", Var("y"), 1.0, agg="sum"),
                    body=[Atom("edge", 0, Var("y"))])
        engine.evaluate(rule)
        np.testing.assert_array_equal(out.values, [0, 1, 1, 0, 0, 0])

    def test_delta_restriction_on_tuple_table(self):
        engine = small_engine()
        out = AggregateTable("out", 6, "sum", 2)
        engine.add(out)
        rule = Rule(head=Head("out", Var("y"), 1.0, agg="sum"),
                    body=[Atom("edge", Var("x"), Var("y"))])
        engine.evaluate(rule, delta_keys=np.array([4]))
        np.testing.assert_array_equal(out.values, [0, 0, 0, 0, 0, 1])

    def test_empty_delta_produces_nothing(self):
        engine = small_engine()
        out = AggregateTable("out", 6, "sum", 2)
        engine.add(out)
        rule = Rule(head=Head("out", Var("y"), 1.0, agg="sum"),
                    body=[Atom("edge", Var("x"), Var("y"))])
        stats = engine.evaluate(rule, delta_keys=np.array([], dtype=np.int64))
        assert stats.produced_tuples == 0
        assert stats.changed.size == 0

    def test_join_on_non_tail_nested_rejected(self):
        engine = SocialiteEngine(num_shards=1, vertex_universe=4)
        engine.add(TupleTable("flat", [np.array([0]), np.array([1])],
                              key_universe=4, tail_nested=False))
        seed = AggregateTable("seed", 4, "sum")
        seed.combine(np.array([0]), np.array([1.0]))
        engine.add(seed)
        engine.add(AggregateTable("out", 4, "sum"))
        rule = Rule(head=Head("out", Var("y"), 1.0, agg="sum"),
                    body=[Atom("seed", Var("x"), Var("v")),
                          Atom("flat", Var("x"), Var("y"))])
        with pytest.raises(ReproError, match="tail-nested"):
            engine.evaluate(rule)

    def test_head_must_be_aggregate_table(self):
        engine = small_engine()
        rule = Rule(head=Head("edge", Var("y"), 1.0, agg="sum"),
                    body=[Atom("edge", Var("x"), Var("y"))])
        with pytest.raises(ReproError, match="aggregate"):
            engine.evaluate(rule)

    def test_aggregate_atom_needs_bound_key(self):
        engine = small_engine()
        values = AggregateTable("vals", 6, "sum", 2)
        engine.add(values)
        engine.add(AggregateTable("out", 6, "sum", 2))
        rule = Rule(head=Head("out", Var("y"), Var("w"), agg="sum"),
                    body=[Atom("edge", Var("x"), Var("y")),
                          Atom("vals", Var("unbound"), Var("w"))])
        with pytest.raises(ReproError, match="key bound"):
            engine.evaluate(rule)

    def test_work_share_sums_to_one(self):
        engine = small_engine()
        out = AggregateTable("out", 6, "sum", 2)
        engine.add(out)
        rule = Rule(head=Head("out", Var("y"), 1.0, agg="sum"),
                    body=[Atom("edge", Var("x"), Var("y"))])
        stats = engine.evaluate(rule)
        assert stats.work_share.sum() == pytest.approx(1.0)

    def test_assign_chain(self):
        engine = small_engine()
        out = AggregateTable("out", 6, "sum", 2)
        engine.add(out)
        rule = Rule(
            head=Head("out", Var("y"), Var("b"), agg="sum"),
            body=[Atom("edge", Var("x"), Var("y"))],
            assigns=[Assign("a", lambda x: x + 1.0, ("x",)),
                     Assign("b", lambda a: a * 2.0, ("a",))],
        )
        engine.evaluate(rule)
        # edge (0,1): b = 2; (0,2): 2; (1,3): 4; (4,5): 10.
        np.testing.assert_array_equal(out.values, [0, 2, 2, 4, 0, 10])


class TestDistSpMatInternals:
    def graph(self):
        return CSRGraph.from_edges(EdgeList.from_pairs(
            8, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 6), (6, 7),
                (7, 0), (0, 4)]
        ))

    def test_band_sizes_cover_vertices(self):
        dist = DistSpMat(self.graph(), ProcessGrid(2))
        assert dist.band_sizes().sum() == 8

    def test_traffic_symmetric_for_dense_spmv(self):
        dist = DistSpMat(self.graph(), ProcessGrid(4))
        _, _, traffic = dist.spmv(np.ones(8), PLUS_TIMES)
        assert np.all(np.diag(traffic) == 0)
        assert traffic.sum() >= 0

    def test_empty_frontier_spmv(self):
        dist = DistSpMat(self.graph(), ProcessGrid(2))
        y, flops, traffic = dist.spmv(np.zeros(8), PLUS_TIMES,
                                      sparse_x=True)
        assert flops == 0
        assert traffic.sum() == 0
        np.testing.assert_array_equal(y, np.zeros(8))

    def test_spgemm_on_path_graph_has_no_triangles(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (1, 2), (2, 3)])
        )
        dist = DistSpMat(graph, ProcessGrid(1))
        product, _, _ = dist.spgemm_aa()
        count, _ = dist.ewise_mult_sum(product)
        assert count == 0

    def test_ewise_flops_proportional_to_nnz(self):
        dist = DistSpMat(self.graph(), ProcessGrid(1))
        product, _, _ = dist.spgemm_aa()
        _, flops = dist.ewise_mult_sum(product)
        assert flops == 2.0 * dist.nnz


class TestPaperReportChecks:
    def test_claim_checks_pass_on_paper_shaped_data(self):
        from repro.harness.paper_report import _claim_checks

        def cells(**kv):
            return {k: {"slowdown": v, "statuses": ["ok"]}
                    for k, v in kv.items()}

        t4 = {a: {1: {"bound_by": "memory"}, 4: {"bound_by": "memory"}}
              for a in ("pagerank", "bfs", "triangle_counting",
                        "collaborative_filtering")}
        t5 = {
            a: cells(combblas=2.0, graphlab=4.0, socialite=3.0,
                     giraph=100.0, galois=1.1)
            for a in ("pagerank", "bfs", "triangle_counting",
                      "collaborative_filtering")
        }
        t5["triangle_counting"]["combblas"]["statuses"] = \
            ["out-of-memory", "out-of-memory", "ok"]
        t6 = {"triangle_counting": cells(combblas=10.0, graphlab=3.0,
                                         socialite=1.5, giraph=50.0)}
        t7 = {"pagerank": {"speedup": 2.4},
              "triangle_counting": {"speedup": 1.6}}
        f5 = {"triangle_counting":
              {"runtimes": {"combblas": "out-of-memory"}}}
        f7 = {"pagerank": [("baseline", 1.0), ("all", 7.0)],
              "bfs": [("baseline", 1.0), ("all", 4.0)]}

        checks = _claim_checks(t4, t5, t6, t7, f5, f7)
        assert all(ok for _, ok in checks)

    def test_claim_checks_catch_regressions(self):
        from repro.harness.paper_report import _claim_checks

        t4 = {a: {1: {"bound_by": "network"}, 4: {"bound_by": "memory"}}
              for a in ("pagerank",)}
        t5 = {"pagerank": {f: {"slowdown": 1.0, "statuses": ["ok"]}
                           for f in ("combblas", "graphlab", "socialite",
                                     "giraph", "galois")},
              "triangle_counting": {f: {"slowdown": 1.0, "statuses": ["ok"]}
                                    for f in ("combblas", "graphlab",
                                              "socialite", "giraph",
                                              "galois")}}
        t6 = {"triangle_counting": {f: {"slowdown": 1.0, "statuses": ["ok"]}
                                    for f in ("combblas", "graphlab",
                                              "socialite")}}
        t7 = {"pagerank": {"speedup": 1.0},
              "triangle_counting": {"speedup": 1.0}}
        f5 = {"triangle_counting": {"runtimes": {"combblas": 12.0}}}
        f7 = {"pagerank": [("baseline", 1.0)]}
        checks = _claim_checks(t4, t5, t6, t7, f5, f7)
        assert not all(ok for _, ok in checks)
