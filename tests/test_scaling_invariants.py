"""Weak-scaling and network-layer invariants the figures depend on."""

import numpy as np
import pytest

from repro.cluster import (
    LAYERS,
    MPI,
    NETTY_HADOOP,
    SINGLE_SOCKET,
    TCP_SOCKETS,
    NodeSpec,
)
from repro.harness import run_experiment
from repro.harness.datasets import weak_scaling_dataset


class TestCommLayerContracts:
    def test_registry_complete(self):
        for name in ("mpi", "tcp-sockets", "single-socket", "multi-socket",
                     "netty-hadoop"):
            assert name in LAYERS

    def test_sustained_never_exceeds_peak(self):
        node = NodeSpec()
        for layer in LAYERS.values():
            assert layer.sustained_bandwidth(node) <= \
                layer.effective_bandwidth(node)

    def test_mpi_peak_vs_sustained_split(self):
        # The Table 4 / Figure 6 distinction: >5 GB/s peak, ~2.9 sustained.
        node = NodeSpec()
        assert MPI.effective_bandwidth(node) > 5e9
        assert 2e9 < MPI.sustained_bandwidth(node) < 3.5e9

    def test_socket_stacks_sustain_their_peak(self):
        node = NodeSpec()
        for layer in (TCP_SOCKETS, SINGLE_SOCKET, NETTY_HADOOP):
            assert layer.sustained_bandwidth(node) == \
                pytest.approx(layer.effective_bandwidth(node))


class TestWeakScalingInvariants:
    @pytest.mark.parametrize("algorithm", ["pagerank", "bfs"])
    def test_native_nearly_flat(self, algorithm):
        times = {}
        for nodes in (1, 4, 16):
            data, factor = weak_scaling_dataset(algorithm, nodes)
            params = {"iterations": 3} if algorithm == "pagerank" else \
                {"source": int(np.argmax(data.out_degrees()))}
            times[nodes] = run_experiment(
                algorithm, "native", data, nodes=nodes,
                scale_factor=factor, **params
            ).runtime()
        # "Horizontal lines represent perfect scaling" — native stays
        # within 2x across a 16x node-count range.
        assert max(times.values()) < 2.0 * min(times.values())

    def test_bytes_per_node_roughly_constant(self):
        per_node = {}
        for nodes in (4, 16):
            data, factor = weak_scaling_dataset("pagerank", nodes)
            run = run_experiment("pagerank", "native", data, nodes=nodes,
                                 scale_factor=factor, iterations=3)
            per_node[nodes] = run.metrics().bytes_sent_per_node
        # More peers per node raises the exchange somewhat, but weak
        # scaling keeps it the same order of magnitude.
        ratio = per_node[16] / per_node[4]
        assert 0.5 < ratio < 4.0

    def test_giraph_gap_grows_or_holds_with_nodes(self):
        gaps = {}
        for nodes in (1, 4):
            data, factor = weak_scaling_dataset("pagerank", nodes)
            native = run_experiment("pagerank", "native", data, nodes=nodes,
                                    scale_factor=factor, iterations=3)
            giraph = run_experiment("pagerank", "giraph", data, nodes=nodes,
                                    scale_factor=factor, iterations=3)
            gaps[nodes] = giraph.runtime() / native.runtime()
        # Multi-node adds network pain on top of Giraph's CPU pain.
        assert gaps[4] > 0.8 * gaps[1]

    def test_triangle_superlinear_factor_applied(self):
        data1, factor1 = weak_scaling_dataset("triangle_counting", 1)
        datap, factorp = weak_scaling_dataset("pagerank", 1)
        # TC's factor includes the E^1.25 exponent, so it exceeds the
        # linear ratio of its own budget by the ^0.25 term.
        linear = 32e6 / (data1.num_edges / 1)
        assert factor1 > 2 * linear
        assert factorp == pytest.approx(128e6 / datap.num_edges, rel=0.01)
