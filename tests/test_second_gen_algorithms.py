"""Cross-engine differential tests for the second-generation workloads.

WCC, SSSP, k-core, and label propagation are implemented five different
ways (native kernels, vertex programs, semiring algebra, Datalog,
worklists); this suite pins all ten registry frameworks to the golden
references on randomized and hand-built graphs, checks that the two
Datalog DNF cells fail *typed*, and asserts the PR-6 invariant — the
vectorized and interpreted kernel backends produce byte-identical
answers and simulated metrics.
"""

import numpy as np
import pytest

from repro.algorithms import (
    kcore_reference,
    label_propagation_reference,
    sssp_reference,
    wcc_reference,
)
from repro.algorithms.registry import runner
from repro.cluster import Cluster, paper_cluster
from repro.datagen import rmat_graph
from repro.errors import ExpressibilityError
from repro.graph import CSRGraph, EdgeList
from repro.harness import run_experiment
from repro.kernels.backend import BACKENDS, use_backend

ALL_FRAMEWORKS = ("native", "combblas", "graphlab", "socialite",
                  "socialite-published", "giraph", "galois", "gps",
                  "graphx", "kdt")
MULTI_NODE_FRAMEWORKS = tuple(f for f in ALL_FRAMEWORKS if f != "galois")
#: SociaLite cannot express these two (see their runner docstrings).
DATALOG_FRAMEWORKS = ("socialite", "socialite-published")
KCORE_FRAMEWORKS = tuple(f for f in ALL_FRAMEWORKS
                         if f not in DATALOG_FRAMEWORKS)
LP_FRAMEWORKS = KCORE_FRAMEWORKS


def cluster(nodes=1):
    return Cluster(paper_cluster(nodes), enforce_memory=False)


def undirected(seed):
    return rmat_graph(scale=8, edge_factor=6, seed=seed, directed=False)


def hub_source(graph):
    return int(np.argmax(graph.out_degrees()))


# ---------------------------------------------------------------------------
# Differential equivalence on randomized graphs.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("framework", ALL_FRAMEWORKS)
@pytest.mark.parametrize("seed", (81, 82))
def test_wcc_equivalence(framework, seed):
    graph = undirected(seed)
    result = runner("wcc", framework)(graph, cluster())
    np.testing.assert_array_equal(result.values, wcc_reference(graph))


@pytest.mark.parametrize("framework", MULTI_NODE_FRAMEWORKS)
def test_wcc_equivalence_multinode(framework):
    graph = undirected(83)
    result = runner("wcc", framework)(graph, cluster(4))
    np.testing.assert_array_equal(result.values, wcc_reference(graph))


@pytest.mark.parametrize("framework", ALL_FRAMEWORKS)
@pytest.mark.parametrize("seed", (84, 85))
def test_sssp_equivalence(framework, seed):
    graph = undirected(seed)
    source = hub_source(graph)
    result = runner("sssp", framework)(graph, cluster(), source=source)
    np.testing.assert_array_equal(result.values,
                                  sssp_reference(graph, source))


@pytest.mark.parametrize("framework", MULTI_NODE_FRAMEWORKS)
def test_sssp_equivalence_multinode(framework):
    graph = undirected(86)
    source = hub_source(graph)
    result = runner("sssp", framework)(graph, cluster(4), source=source)
    np.testing.assert_array_equal(result.values,
                                  sssp_reference(graph, source))


@pytest.mark.parametrize("framework", KCORE_FRAMEWORKS)
@pytest.mark.parametrize("seed", (87, 88))
def test_kcore_equivalence(framework, seed):
    graph = undirected(seed)
    result = runner("k_core", framework)(graph, cluster())
    np.testing.assert_array_equal(result.values, kcore_reference(graph))


@pytest.mark.parametrize("framework",
                         tuple(f for f in MULTI_NODE_FRAMEWORKS
                               if f not in DATALOG_FRAMEWORKS))
def test_kcore_equivalence_multinode(framework):
    graph = undirected(89)
    result = runner("k_core", framework)(graph, cluster(4))
    np.testing.assert_array_equal(result.values, kcore_reference(graph))


@pytest.mark.parametrize("framework", LP_FRAMEWORKS)
@pytest.mark.parametrize("seed", (90, 91))
def test_label_propagation_equivalence(framework, seed):
    graph = undirected(seed)
    result = runner("label_propagation", framework)(graph, cluster(),
                                                    iterations=3, seed=0)
    np.testing.assert_array_equal(
        result.values, label_propagation_reference(graph, 3, seed=0))


@pytest.mark.parametrize("framework",
                         tuple(f for f in MULTI_NODE_FRAMEWORKS
                               if f not in DATALOG_FRAMEWORKS))
def test_label_propagation_equivalence_multinode(framework):
    graph = undirected(92)
    result = runner("label_propagation", framework)(graph, cluster(4),
                                                    iterations=3, seed=0)
    np.testing.assert_array_equal(
        result.values, label_propagation_reference(graph, 3, seed=0))


def test_round_counts_agree_across_engines():
    """Delta-propagation engines all stop after the same round."""
    graph = undirected(93)
    source = hub_source(graph)
    for algorithm, params in (("wcc", {}), ("sssp", {"source": source})):
        rounds = {
            framework: runner(algorithm, framework)(
                graph, cluster(), **params).iterations
            for framework in ALL_FRAMEWORKS
        }
        assert len(set(rounds.values())) == 1, (algorithm, rounds)


# ---------------------------------------------------------------------------
# Hand-built graphs.
# ---------------------------------------------------------------------------

def two_components():
    return CSRGraph.from_edges(
        EdgeList.from_pairs(6, [(0, 1), (1, 2), (3, 4)]).symmetrize()
    )


def k4_with_pendant():
    pairs = [(i, j) for i in range(4) for j in range(i + 1, 4)] + [(0, 4)]
    return CSRGraph.from_edges(EdgeList.from_pairs(5, pairs).symmetrize())


@pytest.mark.parametrize("framework", ALL_FRAMEWORKS)
def test_wcc_hand_built(framework):
    result = runner("wcc", framework)(two_components(), cluster())
    np.testing.assert_array_equal(result.values, [0, 0, 0, 3, 3, 5])


@pytest.mark.parametrize("framework", ALL_FRAMEWORKS)
def test_sssp_hand_built_unreachable(framework):
    graph = two_components()
    result = runner("sssp", framework)(graph, cluster(), source=0)
    reference = sssp_reference(graph, 0)
    np.testing.assert_array_equal(result.values, reference)
    assert not np.isfinite(result.values[3:]).any()


@pytest.mark.parametrize("framework", KCORE_FRAMEWORKS)
def test_kcore_hand_built(framework):
    result = runner("k_core", framework)(k4_with_pendant(), cluster())
    np.testing.assert_array_equal(result.values, [3, 3, 3, 3, 1])


@pytest.mark.parametrize("framework", LP_FRAMEWORKS)
def test_label_propagation_hand_built(framework):
    graph = k4_with_pendant()
    result = runner("label_propagation", framework)(graph, cluster(),
                                                    iterations=2, seed=3)
    np.testing.assert_array_equal(
        result.values, label_propagation_reference(graph, 2, seed=3))


# ---------------------------------------------------------------------------
# Typed DNF cells.
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("framework", DATALOG_FRAMEWORKS)
@pytest.mark.parametrize("algorithm", ("k_core", "label_propagation"))
def test_datalog_unsupported_cells_are_typed(framework, algorithm):
    graph = two_components()
    with pytest.raises(ExpressibilityError, match=algorithm):
        runner(algorithm, framework)(graph, cluster())
    # Through the harness the same cell is a result, not a crash.
    record = run_experiment(algorithm, framework, graph)
    assert record.status == "unsupported"
    assert algorithm in record.failure


# ---------------------------------------------------------------------------
# Kernel backend invariance (the PR-6 contract, extended).
# ---------------------------------------------------------------------------

BACKEND_PROBE_FRAMEWORKS = ("native", "combblas", "giraph", "galois")


@pytest.mark.parametrize("framework", BACKEND_PROBE_FRAMEWORKS)
@pytest.mark.parametrize("algorithm",
                         ("wcc", "sssp", "k_core", "label_propagation"))
def test_backends_bit_identical(framework, algorithm):
    graph = undirected(94)
    params = {"source": hub_source(graph)} if algorithm == "sssp" else {}
    outputs = {}
    for name in BACKENDS:
        with use_backend(name):
            result = runner(algorithm, framework)(graph, cluster(), **params)
        metrics = result.metrics
        outputs[name] = (
            np.asarray(result.values).tobytes(),
            result.iterations,
            metrics.total_time_s,
            metrics.bytes_sent_total,
            metrics.ops_total,
            metrics.streamed_bytes_total,
            metrics.random_bytes_total,
        )
    first, *rest = outputs.values()
    for other in rest:
        assert other == first
