"""Tests: parse the paper's literal rule strings and run them."""

import numpy as np
import pytest

from repro.algorithms import bfs_reference, pagerank_reference
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.frameworks.datalog import (
    AggregateTable,
    SocialiteEngine,
    TupleTable,
    Var,
)
from repro.frameworks.datalog.parser import (
    RuleSyntaxError,
    parse_program,
    parse_rule,
)
from repro.graph import count_triangles_exact


class TestParsing:
    def test_bfs_rule_from_paper(self):
        rule = parse_rule("BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), "
                          "d = d0 + 1.")
        assert rule.head.table == "bfs"
        assert rule.head.agg == "min"
        assert rule.head.key == Var("t")
        assert [a.table for a in rule.body] == ["bfs", "edge"]
        assert len(rule.assigns) == 1
        np.testing.assert_allclose(
            rule.assigns[0].fn(np.array([3.0])), [4.0]
        )

    def test_triangle_rule_from_paper(self):
        rule = parse_rule(
            "TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z)."
        )
        assert rule.head.table == "triangle"
        assert rule.head.key == 0
        assert rule.head.agg == "count"
        assert len(rule.body) == 3

    def test_pagerank_rule_with_sharded_tables(self):
        rule = parse_rule(
            "RANK[n](t+1, $SUM(v)) :- RANK[s](t, v0), OUTEDGE[s](n), "
            "OUTDEG[s](d), v = (1-r)*v0/d.",
            constants={"r": 0.3},
        )
        assert rule.head.table == "rank"
        assert rule.head.key == Var("n")
        # Shard-key brackets become the first column; iteration terms drop.
        assert rule.body[0].terms == (Var("s"), Var("v0"))
        assert rule.body[1].terms == (Var("s"), Var("n"))
        np.testing.assert_allclose(
            rule.assigns[0].fn(np.array([1.0]), np.array([2.0])), [0.35]
        )

    def test_inline_head_expression(self):
        rule = parse_rule("OUT(x, $SUM(2*w)) :- T(x, w).")
        assert rule.assigns[0].target == "__head_value"

    def test_program_parsing(self):
        rules = parse_program(
            "A(x, $SUM(v)) :- T(x, v).\nB(y, $MIN(d)) :- A(y, d)."
        )
        assert [r.head.table for r in rules] == ["a", "b"]

    @pytest.mark.parametrize("bad", [
        "no_arrow_here",
        "HEAD(x) :- T(x, y).",                       # no aggregation
        "HEAD(x, $MAX(v)) :- T(x, v).",              # unknown aggregation
        "HEAD(x, $SUM(v)) :- T(x, v), z = open('f')",  # call not allowed
        "HEAD(x, $SUM(v)) :- ???",
    ])
    def test_rejects_bad_rules(self, bad):
        with pytest.raises(RuleSyntaxError):
            parse_rule(bad)

    def test_expression_sandbox(self):
        with pytest.raises(RuleSyntaxError):
            parse_rule("H(x, $SUM(v)) :- T(x, v), "
                       "w = __import__('os').system")


class TestParsedExecution:
    """The paper's rule strings, parsed and run against golden results."""

    def test_parsed_bfs_matches_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=91, directed=False)
        n = graph.num_vertices
        engine = SocialiteEngine(num_shards=1, vertex_universe=n)
        engine.add(TupleTable("edge", [graph.sources(), graph.targets],
                              key_universe=n, tail_nested=True))
        bfs_table = AggregateTable("bfs", n, "min")
        engine.add(bfs_table)

        rule = parse_rule(
            "BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0 + 1."
        )
        source = int(np.argmax(graph.out_degrees()))
        changed = bfs_table.combine(np.array([source]), np.array([0.0]))
        while changed.size:
            changed = engine.evaluate(rule, delta_keys=changed).changed

        expected = bfs_reference(graph, source)
        from repro.algorithms.bfs import UNREACHED
        got = np.where(bfs_table.present, bfs_table.values,
                       UNREACHED).astype(np.int64)
        np.testing.assert_array_equal(got, expected.astype(np.int64))

    def test_parsed_triangle_matches_reference(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=92)
        n = graph.num_vertices
        engine = SocialiteEngine(num_shards=1, vertex_universe=n)
        engine.add(TupleTable("edge", [graph.sources(), graph.targets],
                              key_universe=n, tail_nested=True))
        triangle = AggregateTable("triangle", 1, "count")
        engine.add(triangle)

        rule = parse_rule(
            "TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z)."
        )
        engine.evaluate(rule)
        assert triangle.values[0] == count_triangles_exact(graph)

    def test_parsed_pagerank_matches_reference(self):
        graph = rmat_graph(scale=8, edge_factor=6, seed=93)
        n = graph.num_vertices
        engine = SocialiteEngine(num_shards=1, vertex_universe=n)
        out_degrees = graph.out_degrees().astype(np.float64)
        engine.add(TupleTable("outedge", [graph.sources(), graph.targets],
                              key_universe=n, tail_nested=True))
        outdeg = AggregateTable("outdeg", n, "sum")
        outdeg.combine(np.arange(n), np.maximum(out_degrees, 1.0))
        engine.add(outdeg)
        rank = AggregateTable("rank", n, "sum")
        rank.combine(np.arange(n), np.ones(n))
        engine.add(rank)
        rank_next = AggregateTable("rank_next", n, "sum")
        engine.add(rank_next)

        main = parse_rule(
            "RANK_NEXT[n]($SUM(v)) :- RANK[s](v0), OUTEDGE[s](n), "
            "OUTDEG[s](d), v = (1-r)*v0/d.",
            constants={"r": 0.3},
        )
        const = parse_rule(
            "RANK_NEXT[n]($SUM(r)) :- OUTDEG[n](dd).",
            constants={"r": 0.3},
        )
        for _ in range(4):
            rank_next.reset()
            engine.evaluate(const)
            engine.evaluate(main)
            rank.values[:] = rank_next.values
            rank.present[:] = True

        np.testing.assert_allclose(rank.values,
                                   pagerank_reference(graph, 4), rtol=1e-10)
