"""Unit and property tests for repro.graph.bitvector."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import BitVector


class TestBasics:
    def test_new_vector_is_empty(self):
        vec = BitVector(100)
        assert vec.count() == 0
        assert len(vec) == 100
        assert not vec.test(0)
        assert not vec.test(99)

    def test_set_and_test(self):
        vec = BitVector(130)
        vec.set(0)
        vec.set(63)
        vec.set(64)
        vec.set(129)
        assert vec.test(0) and vec.test(63) and vec.test(64) and vec.test(129)
        assert not vec.test(1)
        assert vec.count() == 4

    def test_clear(self):
        vec = BitVector(10)
        vec.set(5)
        vec.clear(5)
        assert not vec.test(5)
        assert vec.count() == 0

    def test_clear_unset_bit_is_noop(self):
        vec = BitVector(10)
        vec.set(3)
        vec.clear(7)
        assert vec.test(3)
        assert vec.count() == 1

    def test_item_protocol(self):
        vec = BitVector(8)
        vec[3] = True
        assert vec[3]
        vec[3] = False
        assert not vec[3]

    def test_out_of_range_raises(self):
        vec = BitVector(10)
        with pytest.raises(IndexError):
            vec.set(10)
        with pytest.raises(IndexError):
            vec.test(-1)

    def test_negative_size_raises(self):
        with pytest.raises(ValueError):
            BitVector(-1)

    def test_zero_size(self):
        vec = BitVector(0)
        assert vec.count() == 0
        assert vec.nbytes() == 0


class TestBulk:
    def test_set_many_and_to_indices(self):
        indices = [5, 64, 64, 3, 127]
        vec = BitVector.from_indices(128, indices)
        assert vec.count() == 4
        np.testing.assert_array_equal(vec.to_indices(), [3, 5, 64, 127])

    def test_set_many_empty(self):
        vec = BitVector(16)
        vec.set_many([])
        assert vec.count() == 0

    def test_set_many_range_check(self):
        vec = BitVector(16)
        with pytest.raises(IndexError):
            vec.set_many([3, 16])

    def test_test_many(self):
        vec = BitVector.from_indices(100, [2, 50, 99])
        hits = vec.test_many([0, 2, 50, 98, 99])
        np.testing.assert_array_equal(hits, [False, True, True, False, True])

    def test_test_many_empty(self):
        vec = BitVector(10)
        assert vec.test_many([]).size == 0

    def test_clear_all(self):
        vec = BitVector.from_indices(70, range(70))
        vec.clear_all()
        assert vec.count() == 0


class TestAlgebra:
    def test_or_and_xor(self):
        a = BitVector.from_indices(70, [1, 2, 65])
        b = BitVector.from_indices(70, [2, 3, 65])
        np.testing.assert_array_equal((a | b).to_indices(), [1, 2, 3, 65])
        np.testing.assert_array_equal((a & b).to_indices(), [2, 65])
        np.testing.assert_array_equal((a ^ b).to_indices(), [1, 3])

    def test_intersect_count(self):
        a = BitVector.from_indices(200, [0, 100, 150])
        b = BitVector.from_indices(200, [100, 150, 199])
        assert a.intersect_count(b) == 2

    def test_size_mismatch_raises(self):
        with pytest.raises(ValueError):
            BitVector(10) | BitVector(11)
        with pytest.raises(ValueError):
            BitVector(10).intersect_count(BitVector(11))

    def test_equality(self):
        a = BitVector.from_indices(66, [5, 65])
        b = BitVector.from_indices(66, [5, 65])
        assert a == b
        b.set(0)
        assert a != b


class TestWireFormat:
    def test_words_round_trip(self):
        original = BitVector.from_indices(130, [0, 64, 129])
        clone = BitVector.from_words(130, original.words)
        assert clone == original

    def test_from_words_shape_check(self):
        with pytest.raises(ValueError):
            BitVector.from_words(130, np.zeros(1, dtype=np.uint64))

    def test_words_view_is_readonly(self):
        vec = BitVector(64)
        with pytest.raises(ValueError):
            vec.words[0] = 1

    def test_nbytes_is_packed(self):
        # 1M bits should occupy 125 KB, not 1 MB — the compression the
        # paper's BFS exploits (Section 6.1.1).
        vec = BitVector(1_000_000)
        assert vec.nbytes() == ((1_000_000 + 63) // 64) * 8


@settings(max_examples=50, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=499), max_size=60))
def test_matches_python_set(indices):
    vec = BitVector.from_indices(500, indices)
    model = set(indices)
    assert vec.count() == len(model)
    np.testing.assert_array_equal(vec.to_indices(), sorted(model))
    probe = np.arange(500)
    np.testing.assert_array_equal(
        vec.test_many(probe), np.isin(probe, sorted(model))
    )


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.integers(min_value=0, max_value=255), max_size=40),
    st.lists(st.integers(min_value=0, max_value=255), max_size=40),
)
def test_algebra_matches_set_algebra(left, right):
    a, b = set(left), set(right)
    va = BitVector.from_indices(256, left)
    vb = BitVector.from_indices(256, right)
    np.testing.assert_array_equal((va | vb).to_indices(), sorted(a | b))
    np.testing.assert_array_equal((va & vb).to_indices(), sorted(a & b))
    np.testing.assert_array_equal((va ^ vb).to_indices(), sorted(a ^ b))
    assert va.intersect_count(vb) == len(a & b)
