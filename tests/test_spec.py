"""Tests for the typed ExperimentSpec facade and the run_experiment shim."""

import dataclasses

import numpy as np
import pytest

from repro.datagen import rmat_graph
from repro.errors import SpecError
from repro.harness import (
    ExperimentSpec,
    run,
    run_experiment,
    valid_params,
)


@pytest.fixture(scope="module")
def graph():
    return rmat_graph(scale=8, edge_factor=8, seed=11)


class TestValidation:
    def test_unknown_algorithm(self):
        # "ssps" is the classic typo for a now-valid algorithm: the
        # error must name the real one so the fix is obvious.
        with pytest.raises(SpecError, match="unknown algorithm") as info:
            ExperimentSpec(algorithm="ssps", framework="native",
                           dataset="rmat_mini")
        assert "sssp" in str(info.value)

    def test_unknown_framework(self):
        with pytest.raises(SpecError, match="unknown framework"):
            ExperimentSpec(algorithm="bfs", framework="spark",
                           dataset="rmat_mini")

    def test_unknown_param_names_valid_ones(self):
        with pytest.raises(SpecError) as info:
            ExperimentSpec(algorithm="pagerank", framework="native",
                           dataset="rmat_mini",
                           params={"iteratoins": 3})
        assert "'iteratoins'" in str(info.value)
        assert "iterations" in str(info.value)
        assert "damping" in str(info.value)

    def test_shim_rejects_typoed_kwargs(self, graph):
        # The historical bug: a misspelled parameter silently vanished
        # into the runner's keyword tail. Now it is a typed error.
        with pytest.raises(SpecError, match="valid:"):
            run_experiment("pagerank", "native", graph, iteratoins=3)

    def test_bad_nodes_and_scale(self):
        with pytest.raises(SpecError, match="nodes"):
            ExperimentSpec(algorithm="bfs", framework="native",
                           dataset="rmat_mini", nodes=0)
        with pytest.raises(SpecError, match="scale_factor"):
            ExperimentSpec(algorithm="bfs", framework="native",
                           dataset="rmat_mini", scale_factor=0.0)

    def test_bad_kernels_backend(self):
        with pytest.raises(SpecError, match="kernel backend"):
            ExperimentSpec(algorithm="bfs", framework="native",
                           dataset="rmat_mini", kernels="simd")

    def test_valid_params_union(self):
        params = valid_params("pagerank")
        assert "iterations" in params
        assert "damping" in params               # native + vertex engines
        assert "tolerance" in params             # native-only — union'd in
        cf = valid_params("collaborative_filtering")
        assert "hidden_dim" in cf and "method" in cf
        assert "superstep_splits" in cf          # giraph-only — union'd in

    def test_frozen(self):
        spec = ExperimentSpec(algorithm="bfs", framework="native",
                              dataset="rmat_mini")
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.nodes = 4


class TestSerialization:
    def test_roundtrip(self):
        spec = ExperimentSpec(
            algorithm="pagerank", framework="giraph", dataset="facebook",
            nodes=4, scale_factor=2.5, deadline_s=10.0,
            kernels="vectorized", faults="drop(p=0.01)", fault_seed=3,
            params={"iterations": 2},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_in_memory_dataset_does_not_serialize(self, graph):
        spec = ExperimentSpec(algorithm="bfs", framework="native",
                              dataset=graph)
        with pytest.raises(SpecError, match="catalog-name"):
            spec.to_dict()

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(SpecError, match="unknown spec field"):
            ExperimentSpec.from_dict({"algorithm": "bfs",
                                      "framework": "native",
                                      "dataset": "rmat_mini",
                                      "cluster": 4})


class TestRunEquivalence:
    def test_shim_equals_spec_run(self, graph):
        legacy = run_experiment("pagerank", "native", graph, nodes=2,
                                iterations=3)
        spec = ExperimentSpec(algorithm="pagerank", framework="native",
                              dataset=graph, nodes=2,
                              params={"iterations": 3})
        typed = run(spec)
        assert legacy.status == typed.status == "ok"
        assert np.array_equal(legacy.result.values, typed.result.values)
        assert legacy.runtime() == typed.runtime()
        assert legacy.config == typed.config

    def test_string_dataset_resolves_through_catalog(self):
        spec = ExperimentSpec(algorithm="bfs", framework="native",
                              dataset="rmat_mini")
        result = run(spec)
        assert result.ok
        assert result.runtime() > 0

    def test_spec_kernels_pins_backend(self, graph):
        by_backend = {}
        for backend in ("vectorized", "interpreted"):
            spec = ExperimentSpec(algorithm="pagerank", framework="native",
                                  dataset=graph, kernels=backend,
                                  params={"iterations": 2})
            by_backend[backend] = run(spec)
        vec, interp = by_backend["vectorized"], by_backend["interpreted"]
        assert np.array_equal(vec.result.values, interp.result.values)
        assert vec.runtime() == interp.runtime()

    def test_chaos_spec_still_runs(self, graph):
        spec = ExperimentSpec(algorithm="pagerank", framework="giraph",
                              dataset=graph, nodes=4,
                              faults="crash(node=2, superstep=1)",
                              params={"iterations": 3})
        result = run(spec)
        assert result.ok
        assert result.recovery is not None
        assert result.recovery.crashes == 1
