"""Cross-engine equivalence: every framework computes the same answers.

The paper compares framework *performance*; this suite pins the harder
property that our re-implementations must also share *semantics* — five
independently-written engines (native kernels, vertex programs, semiring
algebra, Datalog, worklists) agree on every output for randomized
inputs.
"""

import numpy as np
import pytest

from repro.algorithms import (
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.algorithms.registry import runner
from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.frameworks.native import FIGURE7_LADDER
from repro.frameworks.results import AlgorithmResult

SINGLE_NODE_FRAMEWORKS = ("native", "combblas", "graphlab", "socialite",
                          "socialite-published", "giraph", "galois")
MULTI_NODE_FRAMEWORKS = ("native", "combblas", "graphlab", "socialite",
                         "giraph")


def cluster(nodes=1):
    return Cluster(paper_cluster(nodes), enforce_memory=False)


@pytest.mark.parametrize("framework", SINGLE_NODE_FRAMEWORKS)
@pytest.mark.parametrize("seed", (71, 72))
def test_pagerank_equivalence(framework, seed):
    graph = rmat_graph(scale=8, edge_factor=6, seed=seed)
    result = runner("pagerank", framework)(graph, cluster(), iterations=4)
    np.testing.assert_allclose(result.values,
                               pagerank_reference(graph, 4), rtol=1e-9)


@pytest.mark.parametrize("framework", MULTI_NODE_FRAMEWORKS)
def test_pagerank_equivalence_multinode(framework):
    graph = rmat_graph(scale=8, edge_factor=6, seed=73)
    result = runner("pagerank", framework)(graph, cluster(4), iterations=4)
    np.testing.assert_allclose(result.values,
                               pagerank_reference(graph, 4), rtol=1e-9)


@pytest.mark.parametrize("framework", SINGLE_NODE_FRAMEWORKS)
@pytest.mark.parametrize("seed", (74, 75))
def test_bfs_equivalence(framework, seed):
    graph = rmat_graph(scale=8, edge_factor=6, seed=seed, directed=False)
    source = int(np.argmax(graph.out_degrees()))
    result = runner("bfs", framework)(graph, cluster(), source=source)
    np.testing.assert_array_equal(result.values,
                                  bfs_reference(graph, source))


@pytest.mark.parametrize("framework", SINGLE_NODE_FRAMEWORKS)
def test_triangle_equivalence(framework, seed=76):
    graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=seed)
    result = runner("triangle_counting", framework)(graph, cluster())
    assert result.values == triangle_count_reference(graph)


@pytest.mark.parametrize("framework", MULTI_NODE_FRAMEWORKS)
def test_triangle_equivalence_multinode(framework):
    graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=77)
    result = runner("triangle_counting", framework)(graph, cluster(4))
    assert result.values == triangle_count_reference(graph)


@pytest.mark.parametrize("framework", SINGLE_NODE_FRAMEWORKS)
def test_cf_learns(framework):
    ratings = netflix_like_ratings(scale=9, num_items=48, seed=78)
    result = runner("collaborative_filtering", framework)(
        ratings, cluster(), hidden_dim=8, iterations=3
    )
    curve = result.extras["rmse_curve"]
    assert curve[-1] < curve[0]
    p_factors, q_factors = result.values
    assert p_factors.shape == (ratings.num_users, 8)
    assert q_factors.shape == (ratings.num_items, 8)


def test_native_options_do_not_change_results():
    """Figure 7 toggles change time, never answers."""
    graph = rmat_graph(scale=8, edge_factor=6, seed=79, directed=False)
    source = int(np.argmax(graph.out_degrees()))
    reference = None
    for _label, options in FIGURE7_LADDER:
        result = runner("bfs", "native")(graph, cluster(2), source=source,
                                         options=options)
        if reference is None:
            reference = result.values
        np.testing.assert_array_equal(result.values, reference)


class TestAlgorithmResult:
    def test_runtime_for_comparison_policy(self):
        from repro.cluster import RunMetrics

        metrics = RunMetrics(num_nodes=1, total_time_s=10.0,
                             iteration_times=[2.0, 3.0])
        per_iter = AlgorithmResult("pagerank", "native", None, 2, metrics)
        total = AlgorithmResult("bfs", "native", None, 2, metrics)
        assert per_iter.runtime_for_comparison() == pytest.approx(2.5)
        assert total.runtime_for_comparison() == 10.0
