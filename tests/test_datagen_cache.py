"""Content-addressed dataset cache: keys, immutability, invalidation.

Covers the cache's whole contract: cold and warm calls hand out equal
(immutable, memory-mapped) datasets; keys bind the full generator
signature plus the code-version salt; a mutating cell cannot poison a
later cell; tracer instants make hits/misses observable; and the
``repro cache`` CLI manages the store.
"""

import numpy as np
import pytest

from repro.datagen import (
    cache_entries,
    cache_stats,
    clear_cache,
    netflix_like_ratings,
    rmat_graph,
)
from repro.datagen import cache as cache_module
from repro.observability import Tracer

GRAPH_ARGS = dict(scale=6, edge_factor=4, seed=11)


def mmap_backed(array) -> bool:
    """True when the array's buffer chain bottoms out in a memory map.

    ``CSRGraph`` wraps its inputs in ``np.asarray``, which turns a
    ``np.memmap`` into a base-class *view* (no copy); a dtype mismatch
    would silently copy instead, which is exactly what this detects.
    """
    while isinstance(array, np.ndarray):
        if isinstance(array, np.memmap):
            return True
        array = array.base
    return False


@pytest.fixture
def cache_dir(tmp_path, monkeypatch):
    """Point the cache at a private root and make sure it is enabled."""
    root = tmp_path / "cache"
    monkeypatch.setenv(cache_module.CACHE_DIR_ENV, str(root))
    monkeypatch.delenv(cache_module.CACHE_ENABLE_ENV, raising=False)
    return root


class TestRoundtrip:
    def test_warm_call_reproduces_the_cold_build(self, cache_dir):
        fresh = rmat_graph.__wrapped__(**GRAPH_ARGS)   # uncached build
        cold = rmat_graph(**GRAPH_ARGS)
        warm = rmat_graph(**GRAPH_ARGS)
        for built in (cold, warm):
            assert built.num_vertices == fresh.num_vertices
            assert np.array_equal(built.offsets, fresh.offsets)
            assert np.array_equal(built.targets, fresh.targets)
        assert len(cache_entries()) == 1
        # The warm copy is a read-only memory map, not an allocation.
        assert mmap_backed(warm.targets) and mmap_backed(warm.offsets)
        assert not warm.targets.flags.writeable

    def test_ratings_roundtrip(self, cache_dir):
        cold = netflix_like_ratings(scale=6, num_items=40, seed=5)
        warm = netflix_like_ratings(scale=6, num_items=40, seed=5)
        assert warm.num_users == cold.num_users
        assert warm.num_items == cold.num_items
        assert np.array_equal(warm.ratings, cold.ratings)
        assert not warm.ratings.flags.writeable

    def test_default_and_explicit_params_share_one_entry(self, cache_dir):
        rmat_graph(6, seed=11, edge_factor=4)
        rmat_graph(scale=6, edge_factor=4, seed=11)    # defaults applied
        assert len(cache_entries()) == 1
        rmat_graph(scale=6, edge_factor=4, seed=12)    # any param change
        assert len(cache_entries()) == 2


class TestImmutability:
    def test_cached_arrays_are_read_only(self, cache_dir):
        graph = rmat_graph(**GRAPH_ARGS)
        for array in (graph.offsets, graph.targets):
            assert not array.flags.writeable
            with pytest.raises((ValueError, TypeError)):
                array[0] = 0

    def test_mutating_cell_cannot_poison_a_later_cell(self, cache_dir):
        """The aliasing regression the freeze exists to prevent."""
        first = rmat_graph(**GRAPH_ARGS)
        pristine = np.array(first.targets[:16])        # private copy
        with pytest.raises((ValueError, TypeError)):
            first.targets[0] = first.targets[0] + 1    # the mutating cell
        later = rmat_graph(**GRAPH_ARGS)               # a later cell
        assert np.array_equal(later.targets[:16], pristine)

    def test_disabled_cache_still_freezes(self, cache_dir, monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_ENABLE_ENV, "0")
        graph = rmat_graph(**GRAPH_ARGS)
        assert not graph.targets.flags.writeable
        assert cache_entries() == []                   # nothing stored


class TestKeysAndInvalidation:
    def test_entry_key_is_order_insensitive_and_param_sensitive(self):
        base = cache_module.entry_key("g", {"a": 1, "b": 2})
        assert cache_module.entry_key("g", {"b": 2, "a": 1}) == base
        assert cache_module.entry_key("g", {"a": 1, "b": 3}) != base
        assert cache_module.entry_key("h", {"a": 1, "b": 2}) != base

    def test_entry_key_rejects_unkeyable_params(self):
        with pytest.raises(TypeError, match="cache key"):
            cache_module.entry_key("g", {"x": object()})

    def test_code_version_salts_keys_and_marks_stale(self, cache_dir,
                                                     monkeypatch):
        rmat_graph(**GRAPH_ARGS)
        before = cache_module.entry_key("rmat_graph", {"scale": 6})
        assert [item["stale"] for item in cache_entries()] == [False]

        # Simulate an edit to a generator: the salt changes, every old
        # entry goes stale, and new keys no longer collide with it.
        monkeypatch.setattr(cache_module, "code_version", lambda: "0" * 16)
        assert cache_module.entry_key("rmat_graph", {"scale": 6}) != before
        assert [item["stale"] for item in cache_entries()] == [True]
        assert clear_cache(stale_only=True) == 1
        assert cache_entries() == []


class TestObservability:
    def test_tracer_sees_miss_store_then_hit(self, cache_dir):
        tracer = Tracer()
        with cache_module.use_tracer(tracer):
            rmat_graph(**GRAPH_ARGS)
            rmat_graph(**GRAPH_ARGS)
        assert len(tracer.spans_named("dataset-cache-miss")) == 1
        assert len(tracer.spans_named("dataset-cache-store")) == 1
        assert len(tracer.spans_named("dataset-cache-hit")) == 1


class TestManagement:
    def test_stats_and_clear(self, cache_dir):
        rmat_graph(**GRAPH_ARGS)
        netflix_like_ratings(scale=6, num_items=40, seed=5)
        summary = cache_stats()
        assert summary["entries"] == 2 and summary["bytes"] > 0
        assert set(summary["by_generator"]) == \
            {"rmat_graph", "netflix_like_ratings"}
        assert clear_cache() == 2
        assert cache_stats()["entries"] == 0

    def test_cache_cli(self, cache_dir, capsys):
        from repro.cli import main

        assert main(["cache", "stats"]) == 0
        rmat_graph(**GRAPH_ARGS)
        assert main(["cache", "list"]) == 0
        out = capsys.readouterr().out
        assert "rmat_graph" in out
        assert main(["cache", "clear", "--stale"]) == 0
        assert main(["cache", "clear"]) == 0
        assert main(["cache", "list"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_stats_json_includes_pins(self, cache_dir, capsys):
        import json

        from repro.cli import main

        rmat_graph(**GRAPH_ARGS)
        cache_module.pin("rmat_graph", dict(GRAPH_ARGS))
        try:
            assert main(["cache", "stats", "--json"]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert payload["entries"] == 1
            assert payload["pinned"]["entries"] == 1
            assert payload["pinned"]["keys"][0]["generator"] \
                == "rmat_graph"
        finally:
            cache_module.clear_pins()


class TestPinnedDatasets:
    @pytest.fixture(autouse=True)
    def _fresh_pins(self):
        cache_module.clear_pins()
        yield
        cache_module.clear_pins()

    def test_pinning_block_pins_what_it_touches(self, cache_dir):
        with cache_module.pinning():
            warm = rmat_graph(**GRAPH_ARGS)
        held = cache_module.pinned()
        assert len(held) == 1
        assert held[0]["generator"] == "rmat_graph"
        assert held[0]["refcount"] == 1
        # A later load is served from the pin, not the filesystem, and
        # hands back the *same* object.
        tracer = Tracer()
        with cache_module.use_tracer(tracer):
            again = rmat_graph(**GRAPH_ARGS)
        assert again is warm
        hits = tracer.spans_named("dataset-cache-hit") \
            if hasattr(tracer, "spans_named") else []
        instants = [span for span in tracer.spans
                    if span.name == "dataset-cache-hit"]
        assert instants and instants[-1].attrs.get("pinned") is True
        assert cache_module.pinned()[0]["hits"] == 1

    def test_pin_refcount_and_unpin(self, cache_dir):
        rmat_graph(**GRAPH_ARGS)                      # publish the entry
        key = cache_module.pin("rmat_graph", dict(GRAPH_ARGS))
        assert cache_module.pin("rmat_graph", dict(GRAPH_ARGS)) == key
        assert cache_module.pinned()[0]["refcount"] == 2
        assert cache_module.unpin(key)
        assert cache_module.pinned()[0]["refcount"] == 1
        assert cache_module.unpin(key)
        assert cache_module.pinned() == []
        assert not cache_module.unpin(key)

    def test_pin_unknown_entry_without_build_raises(self, cache_dir):
        with pytest.raises(KeyError):
            cache_module.pin("rmat_graph", dict(GRAPH_ARGS))

    def test_stats_report_pins(self, cache_dir):
        rmat_graph(**GRAPH_ARGS)
        cache_module.pin("rmat_graph", dict(GRAPH_ARGS))
        report = cache_stats()
        assert report["pinned"]["entries"] == 1
        assert report["pinned"]["refcount"] == 1
        assert report["pinned"]["keys"][0]["generator"] == "rmat_graph"

    def test_pins_work_with_disk_cache_disabled(self, cache_dir,
                                                monkeypatch):
        monkeypatch.setenv(cache_module.CACHE_ENABLE_ENV, "0")
        with cache_module.pinning():
            warm = rmat_graph(**GRAPH_ARGS)
        assert rmat_graph(**GRAPH_ARGS) is warm
