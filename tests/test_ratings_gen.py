"""Tests for the ratings generator and the dataset catalog."""

import numpy as np
import pytest

from repro.datagen import (
    CATALOG,
    bfs_variant,
    dataset,
    filter_min_degree,
    fold_to_bipartite,
    netflix_like_ratings,
    triangle_variant,
    uniform_ratings,
)
from repro.graph import EdgeList, gini_coefficient


class TestFold:
    def test_fold_maps_columns_mod_items(self):
        edges = EdgeList.from_pairs(10, [(0, 7), (1, 9), (2, 3)])
        folded = fold_to_bipartite(edges, num_items=4)
        assert set(zip(folded.src.tolist(), folded.dst.tolist())) == {
            (0, 3), (1, 1), (2, 3)
        }

    def test_fold_is_logical_or(self):
        # Columns 1 and 5 fold onto item 1; duplicates must collapse.
        edges = EdgeList.from_pairs(10, [(0, 1), (0, 5)])
        folded = fold_to_bipartite(edges, num_items=4)
        assert folded.num_edges == 1

    def test_fold_validates(self):
        with pytest.raises(ValueError):
            fold_to_bipartite(EdgeList.from_pairs(4, []), num_items=0)


class TestDegreeFilter:
    def test_removes_low_degree_to_fixed_point(self):
        # User 0 rates 5 items; each of those items is rated by only
        # user 0 plus maybe one more — engineered cascade.
        pairs = [(0, i) for i in range(5)] + [(1, 0)]
        edges = EdgeList.from_pairs(6, pairs)
        src, dst = filter_min_degree(edges, num_items=5, min_degree=2)
        # Item degrees: item0=2, others=1 -> items 1..4 drop -> user 0
        # degree falls to 1 -> everything drops.
        assert src.size == 0

    def test_keeps_dense_core(self):
        pairs = [(u, i) for u in range(4) for i in range(4)]
        edges = EdgeList.from_pairs(8, pairs)
        src, dst = filter_min_degree(edges, num_items=4, min_degree=3)
        assert src.size == 16

    def test_min_degree_guarantee(self):
        ratings = netflix_like_ratings(scale=10, num_items=64, seed=0)
        assert ratings.user_degrees().min() >= 5
        assert ratings.item_degrees().min() >= 5


class TestNetflixLike:
    def test_shapes_and_values(self):
        ratings = netflix_like_ratings(scale=10, num_items=64, seed=1)
        assert ratings.num_ratings > 0
        assert set(np.unique(ratings.ratings)) <= {1.0, 2.0, 3.0, 4.0, 5.0}
        # Compacted id spaces: every user and item actually appears.
        assert np.unique(ratings.users).size == ratings.num_users
        assert np.unique(ratings.items).size == ratings.num_items

    def test_deterministic(self):
        a = netflix_like_ratings(scale=10, num_items=64, seed=9)
        b = netflix_like_ratings(scale=10, num_items=64, seed=9)
        np.testing.assert_array_equal(a.users, b.users)
        np.testing.assert_allclose(a.ratings, b.ratings)

    def test_power_law_vs_uniform(self):
        # The paper's generator exists because uniform sampling (Gemulla)
        # misses the power-law skew. Verify ours is more skewed.
        power = netflix_like_ratings(scale=12, num_items=128, seed=2)
        uniform = uniform_ratings(power.num_users, power.num_items,
                                  power.num_ratings, seed=2)
        # User degrees carry the power law; item degrees are flattened by
        # the column fold but must still beat the uniform sampler.
        assert gini_coefficient(power.user_degrees()) > \
            gini_coefficient(uniform.user_degrees()) + 0.15
        assert gini_coefficient(power.item_degrees()) > \
            gini_coefficient(uniform.item_degrees()) + 0.03

    def test_degenerate_input_raises(self):
        with pytest.raises(ValueError):
            netflix_like_ratings(scale=3, num_items=2, edge_factor=1,
                                 seed=0, min_degree=50)


class TestCatalog:
    def test_catalog_contains_paper_datasets(self):
        for name in ("facebook", "wikipedia", "livejournal", "twitter",
                     "netflix", "yahoo_music", "synthetic_graph500",
                     "synthetic_collaborative"):
            assert name in CATALOG

    def test_unknown_dataset_raises(self):
        with pytest.raises(KeyError, match="unknown dataset"):
            dataset("orkut")

    def test_graph_proxy_builds(self):
        graph = dataset("rmat_mini")
        assert graph.num_vertices == 1024
        assert graph.num_edges > 0

    def test_ratings_proxy_builds(self):
        ratings = dataset("netflix")
        assert ratings.num_ratings > 1000
        assert ratings.num_items <= 290

    def test_triangle_variant_oriented(self):
        graph = triangle_variant("rmat_mini")
        assert np.all(graph.sources() < graph.targets)

    def test_bfs_variant_symmetric(self):
        graph = bfs_variant("rmat_mini")
        pairs = set(zip(graph.sources().tolist(), graph.targets.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_triangle_variant_rejects_ratings(self):
        with pytest.raises(ValueError):
            triangle_variant("netflix")

    def test_proxies_deterministic(self):
        a, b = dataset("facebook"), dataset("facebook")
        np.testing.assert_array_equal(a.targets, b.targets)
