"""Property-based tests for the cost model (hand-rolled generators).

The cost model is the foundation every simulated number rests on, so its
algebraic contracts are checked over a seeded grid of random work
shapes, not just hand-picked examples:

* ``bound_by`` agrees with the ``memory_time``/``cpu_time`` comparison
  it claims to summarize, and ``compute_time`` is their max;
* ``step_time`` is monotone in both arguments, and overlap is never
  slower than serial execution;
* the roofline floors really are floors: no knob setting beats them.
"""

import numpy as np
import pytest

from repro.cluster.cost import ComputeWork, CostModel
from repro.cluster.hardware import PAPER_NODE

N_CASES = 300


def random_works(seed=0, n=N_CASES):
    """Seeded stream of random-but-plausible work shapes."""
    rng = np.random.RandomState(seed)
    for _ in range(n):
        yield ComputeWork(
            streamed_bytes=float(rng.uniform(0, 1e12)),
            random_bytes=float(rng.uniform(0, 1e11)),
            ops=float(rng.uniform(0, 1e12)),
            cpu_efficiency=float(rng.uniform(0.01, 1.0)),
            cores_fraction=float(rng.uniform(0.01, 1.0)),
            prefetch=bool(rng.randint(2)),
            memory_parallelism=float(rng.uniform(0.01, 1.0)),
        )


@pytest.fixture(scope="module")
def cost():
    return CostModel(PAPER_NODE)


class TestBoundByConsistency:
    def test_bound_by_matches_time_comparison(self, cost):
        for work in random_works(seed=1):
            memory, cpu = cost.memory_time(work), cost.cpu_time(work)
            expected = "memory" if memory >= cpu else "cpu"
            assert cost.bound_by(work) == expected, work

    def test_compute_time_is_max_of_halves(self, cost):
        for work in random_works(seed=2):
            assert cost.compute_time(work) == max(cost.memory_time(work),
                                                  cost.cpu_time(work))

    def test_times_non_negative_and_finite(self, cost):
        for work in random_works(seed=3):
            for value in (cost.memory_time(work), cost.cpu_time(work),
                          cost.compute_time(work)):
                assert value >= 0.0 and np.isfinite(value)

    def test_zero_work_costs_nothing(self, cost):
        work = ComputeWork()
        assert cost.memory_time(work) == 0.0
        assert cost.cpu_time(work) == 0.0
        assert cost.compute_time(work) == 0.0

    def test_negative_counters_rejected(self):
        with pytest.raises(ValueError):
            ComputeWork(streamed_bytes=-1.0)
        with pytest.raises(ValueError):
            ComputeWork(ops=-1e-9)


class TestStepTimeProperties:
    def test_monotone_in_both_arguments(self, cost):
        rng = np.random.RandomState(4)
        for _ in range(N_CASES):
            compute = float(rng.uniform(0, 100))
            comm = float(rng.uniform(0, 100))
            delta = float(rng.uniform(0, 50))
            for overlap in (False, True):
                base = cost.step_time(compute, comm, overlap)
                assert cost.step_time(compute + delta, comm, overlap) >= base
                assert cost.step_time(compute, comm + delta, overlap) >= base

    def test_overlap_never_slower_than_serial(self, cost):
        rng = np.random.RandomState(5)
        for _ in range(N_CASES):
            compute = float(rng.uniform(0, 100))
            comm = float(rng.uniform(0, 100))
            assert cost.step_time(compute, comm, overlap=True) <= \
                cost.step_time(compute, comm, overlap=False)

    def test_overlap_bounded_below_by_each_component(self, cost):
        rng = np.random.RandomState(6)
        for _ in range(N_CASES):
            compute = float(rng.uniform(0, 100))
            comm = float(rng.uniform(0, 100))
            combined = cost.step_time(compute, comm, overlap=True)
            assert combined >= compute and combined >= comm

    def test_negative_times_rejected(self, cost):
        with pytest.raises(ValueError):
            cost.step_time(-1.0, 0.0, overlap=False)
        with pytest.raises(ValueError):
            cost.step_time(0.0, -1.0, overlap=True)


class TestRooflineFloors:
    """The perf roofline's floors must be unbeatable by any knob setting."""

    def test_memory_floor_is_a_floor(self, cost):
        for work in random_works(seed=7):
            floor = cost.memory_floor_s(work.streamed_bytes,
                                        work.random_bytes)
            assert cost.memory_time(work) >= floor - 1e-12, work

    def test_cpu_floor_is_a_floor(self, cost):
        for work in random_works(seed=8):
            floor = cost.cpu_floor_s(work.ops)
            assert cost.cpu_time(work) >= floor - 1e-12, work

    def test_ideal_knobs_achieve_the_floors(self, cost):
        for work in random_works(seed=9):
            ideal = ComputeWork(streamed_bytes=work.streamed_bytes,
                                random_bytes=work.random_bytes,
                                ops=work.ops, prefetch=True)
            floor = cost.memory_floor_s(work.streamed_bytes,
                                        work.random_bytes)
            assert cost.memory_time(ideal) == pytest.approx(floor)
            assert cost.cpu_time(ideal) == pytest.approx(
                cost.cpu_floor_s(work.ops))


class TestScalingProperties:
    def test_scaled_work_scales_time_linearly(self, cost):
        rng = np.random.RandomState(10)
        for work in random_works(seed=11, n=100):
            factor = float(rng.uniform(0.1, 100))
            scaled = work.scaled(factor)
            assert cost.memory_time(scaled) == pytest.approx(
                factor * cost.memory_time(work))
            assert cost.cpu_time(scaled) == pytest.approx(
                factor * cost.cpu_time(work))

    def test_merged_work_superadditive_in_time(self, cost):
        works = list(random_works(seed=12, n=100))
        for left, right in zip(works[::2], works[1::2]):
            merged = left.merged(right)
            # Merging takes the worst settings of either piece, so the
            # merged time can only beat the sum if settings improved —
            # which merged() forbids (min of efficiencies/fractions).
            assert cost.compute_time(merged) >= max(
                cost.compute_time(left), cost.compute_time(right)) - 1e-12
