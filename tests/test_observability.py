"""Tests for the flight-recorder observability layer.

The tracer's numbers must be the *same* numbers the aggregate metrics
report — spans are just those quantities with timestamps and structure.
So the core assertions here cross-check trace totals against
:class:`RunMetrics`: summed superstep+tick durations == total runtime,
the bytes_sent counter == bytes_sent_total, and the Chrome export is
schema-valid trace_event JSON. The no-op path (no tracer passed) must
keep working for every framework in the registry.
"""

import json

import pytest

from repro.algorithms.registry import FRAMEWORKS
from repro.datagen import rmat_graph, rmat_triangle_graph
from repro.errors import ReproError
from repro.harness import default_params, run_experiment
from repro.observability import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    chrome_trace,
    render_summary_tree,
    steps_csv,
)


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=71)


def _traced(algorithm, framework, data, **kwargs):
    result = run_experiment(algorithm, framework, data, trace=Tracer(),
                            **kwargs)
    assert result.ok, result.failure
    return result


# ---------------------------------------------------------------------------
# Tracer mechanics


class TestTracerMechanics:
    def test_span_nesting_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.advance(1.0)
            with tracer.span("inner"):
                tracer.advance(2.0)
        outer, inner = tracer.spans
        assert outer.parent is None and outer.depth == 0
        assert inner.parent == 0 and inner.depth == 1
        assert inner.start_s >= outer.start_s
        assert inner.end_s <= outer.end_s
        assert not tracer.open_spans()

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("doomed"):
                raise ValueError("boom")
        assert not tracer.open_spans()

    def test_counters_accumulate(self):
        tracer = Tracer()
        tracer.count("messages", 3)
        tracer.count("messages", 4)
        assert tracer.counters["messages"] == 7
        # Samples record the running total at each bump.
        assert [s[2] for s in tracer.counter_samples] == [3, 7]

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        assert not tracer.enabled
        with tracer.span("anything", attr=1) as handle:
            handle.set(more=2)
        tracer.count("messages", 5)
        tracer.instant("marker")
        tracer.advance(1.0)
        assert not hasattr(tracer, "spans")
        assert not hasattr(tracer, "counters")

    def test_shared_null_tracer_identity(self):
        # Every default call site shares one instance: no allocations.
        from repro.frameworks.vertex.engine import NULL_TRACER as engine_null
        assert engine_null is NULL_TRACER


# ---------------------------------------------------------------------------
# Trace totals vs RunMetrics aggregates


class TestTraceAgreesWithMetrics:
    @pytest.fixture(scope="class")
    def giraph_run(self, graph_small):
        return _traced("pagerank", "giraph", graph_small, nodes=4,
                       iterations=3)

    def test_span_durations_cover_total_runtime(self, giraph_run):
        tracer = giraph_run.trace
        metrics = giraph_run.metrics()
        stepped = tracer.total_duration("superstep") \
            + tracer.total_duration("tick")
        assert stepped == pytest.approx(metrics.total_time_s, rel=1e-9)

    def test_bytes_counter_matches_metrics(self, giraph_run):
        tracer = giraph_run.trace
        metrics = giraph_run.metrics()
        assert metrics.bytes_sent_total > 0
        assert tracer.counters["bytes_sent"] == pytest.approx(
            metrics.bytes_sent_total, rel=1e-9)

    def test_run_span_wraps_everything(self, giraph_run):
        tracer = giraph_run.trace
        (run_span,) = tracer.spans_named("run")
        assert run_span.attrs["algorithm"] == "pagerank"
        assert run_span.attrs["framework"] == "giraph"
        assert run_span.parent is None
        for span in tracer.spans:
            assert span.start_s >= run_span.start_s
            if span.end_s is not None:
                assert span.end_s <= run_span.end_s + 1e-12

    def test_superstep_nests_under_engine_phase(self, giraph_run):
        tracer = giraph_run.trace
        for step in tracer.spans_named("superstep"):
            assert step.parent is not None
            parent = tracer.spans[step.parent]
            assert parent.name in ("exchange-apply", "gather/apply/scatter")

    def test_superstep_attrs_sum_to_metrics(self, giraph_run):
        metrics = giraph_run.metrics()
        steps = giraph_run.trace.spans_named("superstep")
        assert sum(s.attrs["bytes_sent"] for s in steps) == pytest.approx(
            metrics.bytes_sent_total, rel=1e-9)
        assert sum(s.attrs["compute_s"] for s in steps) == pytest.approx(
            metrics.compute_time_s, rel=1e-9)
        assert sum(s.attrs["comm_s"] for s in steps) == pytest.approx(
            metrics.comm_time_s, rel=1e-9)

    def test_frontier_counter_equals_reached(self, graph_small):
        result = _traced("bfs", "native", graph_small,
                         **default_params("bfs", graph_small))
        reached = result.result.extras["reached"]
        assert result.trace.counters["frontier_size"] == reached

    def test_messages_counter_at_paper_scale(self, graph_small):
        plain = _traced("pagerank", "giraph", graph_small, nodes=2,
                        iterations=2)
        scaled = run_experiment("pagerank", "giraph", graph_small, nodes=2,
                                iterations=2, scale_factor=100.0,
                                trace=Tracer())
        assert scaled.trace.counters["messages"] == pytest.approx(
            100.0 * plain.trace.counters["messages"])


# ---------------------------------------------------------------------------
# Chaos runs: fault/checkpoint/recovery spans are part of the same story


class TestChaosTracing:
    @pytest.fixture(scope="class")
    def chaos_run(self, graph_small):
        return _traced("pagerank", "giraph", graph_small, nodes=4,
                       iterations=4,
                       faults="crash(node=2, superstep=2); drop(p=0.05)",
                       fault_seed=17)

    def test_fault_instants_and_recovery_spans(self, chaos_run):
        tracer = chaos_run.trace
        faults = tracer.spans_named("fault")
        assert any(span.attrs.get("kind") == "node-crash" for span in faults)
        (recovery,) = tracer.spans_named("recovery")
        assert recovery.node == 2           # rendered on node 2's lane
        assert recovery.attrs["superstep"] == 2
        assert recovery.attrs["replay_s"] >= 0
        assert tracer.spans_named("checkpoint")
        assert tracer.counters["faults"] >= 1

    def test_spans_mirror_recovery_stats(self, chaos_run):
        tracer = chaos_run.trace
        stats = chaos_run.recovery
        assert tracer.total_duration("recovery") == pytest.approx(
            stats.recovery_time_s, rel=1e-9)
        assert tracer.total_duration("checkpoint") == pytest.approx(
            stats.checkpoint_time_s, rel=1e-9)
        if stats.messages_dropped:
            assert tracer.counters["messages_dropped"] \
                == stats.messages_dropped

    def test_trace_totals_include_recovery_time(self, chaos_run):
        """The trace-vs-metrics invariant, extended: superstep + tick +
        checkpoint + recovery spans cover the whole simulated clock."""
        tracer = chaos_run.trace
        metrics = chaos_run.metrics()
        stepped = (tracer.total_duration("superstep")
                   + tracer.total_duration("tick")
                   + tracer.total_duration("checkpoint")
                   + tracer.total_duration("recovery"))
        assert stepped == pytest.approx(metrics.total_time_s, rel=1e-9)
        assert tracer.total_duration("recovery") > 0

    def test_metrics_from_trace_includes_recovery(self, chaos_run):
        from repro.cluster.timeline import metrics_from_trace

        rebuilt = metrics_from_trace(chaos_run.trace, num_nodes=4)
        assert rebuilt.total_time_s == pytest.approx(
            chaos_run.metrics().total_time_s, rel=1e-9)

    def test_chrome_export_carries_fault_events(self, chaos_run):
        doc = json.loads(json.dumps(chrome_trace(chaos_run.trace)))
        names = {event["name"] for event in doc["traceEvents"]}
        assert {"fault", "checkpoint", "recovery"} <= names
        recovery_us = sum(event["dur"] for event in doc["traceEvents"]
                          if event.get("ph") == "X"
                          and event["name"] == "recovery")
        assert recovery_us / 1e6 == pytest.approx(
            chaos_run.recovery.recovery_time_s, rel=1e-9)


# ---------------------------------------------------------------------------
# Exporters


class TestChromeTraceExport:
    @pytest.fixture(scope="class")
    def trace_doc(self, graph_small):
        result = _traced("pagerank", "giraph", graph_small, nodes=2,
                         iterations=2)
        return chrome_trace(result.trace), result

    def test_schema(self, trace_doc):
        doc, _ = trace_doc
        # Round-trips as JSON (no numpy scalars etc. leaking through).
        doc = json.loads(json.dumps(doc))
        assert doc["displayTimeUnit"] == "ms"
        phases = set()
        for event in doc["traceEvents"]:
            assert {"name", "ph", "pid", "tid"} <= set(event)
            phases.add(event["ph"])
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert event["ts"] >= 0
        assert {"M", "X", "C"} <= phases

    def test_durations_and_counters_agree_with_metrics(self, trace_doc):
        doc, result = trace_doc
        metrics = result.metrics()
        us = 1e6
        step_durs = [e["dur"] for e in doc["traceEvents"]
                     if e.get("ph") == "X" and e["name"] in ("superstep",
                                                             "tick")]
        assert sum(step_durs) / us == pytest.approx(metrics.total_time_s,
                                                    rel=1e-9)
        final_bytes = [e["args"]["bytes_sent"] for e in doc["traceEvents"]
                       if e.get("ph") == "C" and e["name"] == "bytes_sent"]
        assert final_bytes[-1] == pytest.approx(metrics.bytes_sent_total,
                                                rel=1e-9)

    def test_node_lanes_are_named(self, trace_doc):
        doc, _ = trace_doc
        names = {e["args"]["name"] for e in doc["traceEvents"]
                 if e["name"] == "thread_name"}
        assert "driver (critical path)" in names
        assert "node 0" in names and "node 1" in names

    def test_steps_csv_rows(self, trace_doc):
        _, result = trace_doc
        lines = steps_csv(result.trace).strip().splitlines()
        header, rows = lines[0], lines[1:]
        assert header.startswith("index,start_s,time_s,compute_s")
        assert len(rows) == len(result.trace.spans_named("superstep"))
        total = sum(float(row.split(",")[2]) for row in rows)
        assert total <= result.metrics().total_time_s + 1e-9

    def test_summary_tree_renders(self, trace_doc):
        _, result = trace_doc
        text = render_summary_tree(result.trace)
        assert "run" in text and "superstep" in text
        assert "counters:" in text and "bytes_sent" in text

    def test_empty_tracer_renders(self):
        assert render_summary_tree(Tracer()) == "(empty trace)"


# ---------------------------------------------------------------------------
# Every framework: traced and untraced


class TestEveryFramework:
    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_noop_tracer_path(self, framework, graph_small):
        """The default (no tracer) path must work for every framework."""
        result = run_experiment("pagerank", framework, graph_small,
                                iterations=2)
        assert result.ok, result.failure
        assert result.trace is None

    @pytest.mark.parametrize("framework", FRAMEWORKS)
    def test_traced_run_records_spans(self, framework, graph_small):
        result = _traced("pagerank", framework, graph_small, iterations=2)
        tracer = result.trace
        assert tracer.spans_named("run")
        assert tracer.spans_named("superstep")
        assert not tracer.open_spans()
        # Trace and metrics tell the same runtime story, every engine.
        stepped = tracer.total_duration("superstep") \
            + tracer.total_duration("tick")
        assert stepped == pytest.approx(result.metrics().total_time_s,
                                        rel=1e-9)

    def test_tracing_does_not_change_results(self, graph_small):
        plain = run_experiment("pagerank", "giraph", graph_small,
                               iterations=2)
        traced = _traced("pagerank", "giraph", graph_small, iterations=2)
        assert plain.runtime() == traced.runtime()
        assert (plain.result.values == traced.result.values).all()

    def test_oom_run_still_closes_spans(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=6, seed=72)
        result = run_experiment("triangle_counting", "combblas", graph,
                                nodes=2, scale_factor=1e9, trace=Tracer())
        assert result.status == "out-of-memory"
        assert not result.trace.open_spans()


# ---------------------------------------------------------------------------
# Harness API symmetry (satellite: RunResult accessors)


class TestRunResultAccessors:
    def test_metrics_raises_on_failure(self, graph_small):
        failed = run_experiment("pagerank", "galois", graph_small, nodes=4,
                                iterations=2)
        assert not failed.ok
        with pytest.raises(ReproError):
            failed.metrics()
        with pytest.raises(ReproError):
            failed.runtime()
        assert failed.metrics_or_none() is None
        assert failed.runtime_or_none() is None

    def test_or_none_variants_on_success(self, graph_small):
        result = run_experiment("pagerank", "native", graph_small,
                                iterations=2)
        assert result.metrics_or_none() is result.metrics()
        assert result.runtime_or_none() == result.runtime()

    def test_to_dict_is_json_safe(self, graph_small):
        result = run_experiment("bfs", "native", graph_small,
                                **default_params("bfs", graph_small))
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["status"] == "ok"
        assert payload["result"]["metrics"]["total_time_s"] > 0
        assert payload["result"]["values"]["shape"] == \
            [graph_small.num_vertices]

    def test_default_params(self, graph_small):
        assert default_params("pagerank") == {"iterations": 3}
        cf = default_params("collaborative_filtering")
        assert cf == {"iterations": 2, "hidden_dim": 32}
        bfs = default_params("bfs", graph_small)
        assert 0 <= bfs["source"] < graph_small.num_vertices
        assert default_params("triangle_counting") == {}
