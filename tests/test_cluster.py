"""Tests for the cluster simulator (hardware, network, memory, cost)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    MPI,
    NETTY_HADOOP,
    TCP_SOCKETS,
    Cluster,
    ClusterSpec,
    CommLayer,
    ComputeWork,
    CostModel,
    Fabric,
    MemoryTracker,
    NodeSpec,
    paper_cluster,
)
from repro.errors import CapacityError, SimulationError


class TestHardware:
    def test_paper_node_defaults(self):
        node = NodeSpec()
        assert node.cores == 24
        assert node.hardware_threads == 48
        assert node.dram_bytes == 64 * 2**30
        assert node.link_bandwidth == 5.5e9

    def test_compute_rate_scales(self):
        node = NodeSpec()
        full = node.compute_rate()
        assert node.compute_rate(cores_fraction=0.5) == pytest.approx(full / 2)
        assert node.compute_rate(cpu_efficiency=0.1) == pytest.approx(full / 10)

    def test_compute_rate_validates(self):
        node = NodeSpec()
        with pytest.raises(ValueError):
            node.compute_rate(cpu_efficiency=0)
        with pytest.raises(ValueError):
            node.compute_rate(cores_fraction=1.5)

    def test_cluster_spec_validates(self):
        with pytest.raises(ValueError):
            ClusterSpec(num_nodes=0)
        assert paper_cluster(4).total_memory == 4 * 64 * 2**30


class TestCommLayers:
    def test_ordering_matches_paper(self):
        # MPI > sockets > netty, per Figure 6's peak-rate panel.
        node = NodeSpec()
        assert MPI.effective_bandwidth(node) > TCP_SOCKETS.effective_bandwidth(node)
        assert TCP_SOCKETS.effective_bandwidth(node) > \
            NETTY_HADOOP.effective_bandwidth(node)

    def test_mpi_near_hardware_limit(self):
        # Paper: native/CombBLAS peak "over 5 GBps" on a 5.5 GB/s link.
        assert MPI.effective_bandwidth(NodeSpec()) > 5e9

    def test_giraph_layer_below_half_gbps(self):
        # Paper: Giraph peak traffic "less than 0.5 GigaBytes per second".
        assert NETTY_HADOOP.effective_bandwidth(NodeSpec()) < 0.5e9

    def test_layer_validation(self):
        with pytest.raises(ValueError):
            CommLayer("bad", efficiency=0.0)
        with pytest.raises(ValueError):
            CommLayer("bad", efficiency=0.5, latency_s=-1)

    def test_wire_bytes_overhead(self):
        layer = CommLayer("framed", efficiency=0.5, byte_overhead=0.25)
        assert layer.wire_bytes(1000) == 1250


class TestFabric:
    def test_diagonal_is_free(self):
        fabric = Fabric(NodeSpec(), 2)
        traffic = np.array([[1e9, 0.0], [0.0, 1e9]])
        report = fabric.exchange(traffic, MPI)
        assert report.total_bytes == 0
        np.testing.assert_array_equal(report.comm_times, [0.0, 0.0])

    def test_send_receive_bottleneck(self):
        fabric = Fabric(NodeSpec(), 3)
        # Node 0 sends 1 GB to each of nodes 1 and 2 — its send side (2 GB)
        # is the bottleneck, not either receiver's 1 GB.
        traffic = np.zeros((3, 3))
        traffic[0, 1] = traffic[0, 2] = 1e9
        report = fabric.exchange(traffic, MPI)
        bandwidth = MPI.sustained_bandwidth(NodeSpec())
        assert report.comm_times[0] == pytest.approx(2e9 / bandwidth, rel=0.01)
        assert report.comm_times[1] == pytest.approx(1e9 / bandwidth, rel=0.01)

    def test_shape_validation(self):
        fabric = Fabric(NodeSpec(), 2)
        with pytest.raises(SimulationError):
            fabric.exchange(np.zeros((3, 3)), MPI)
        with pytest.raises(SimulationError):
            fabric.exchange(np.array([[0.0, -1.0], [0.0, 0.0]]), MPI)

    def test_slower_layer_takes_longer(self):
        fabric = Fabric(NodeSpec(), 2)
        traffic = np.array([[0.0, 1e9], [0.0, 0.0]])
        fast = fabric.exchange(traffic, MPI).comm_times[0]
        slow = fabric.exchange(traffic, NETTY_HADOOP).comm_times[0]
        assert slow > 5 * fast


class TestMemory:
    def test_allocate_free_peak(self):
        tracker = MemoryTracker(0, capacity_bytes=1000)
        tracker.allocate("graph", 400)
        tracker.allocate("buffers", 500)
        tracker.free("buffers")
        assert tracker.used_bytes == 400
        assert tracker.peak_bytes == 900

    def test_capacity_error(self):
        tracker = MemoryTracker(3, capacity_bytes=1000)
        with pytest.raises(CapacityError) as excinfo:
            tracker.allocate("huge", 2000)
        assert excinfo.value.node == 3

    def test_scale_factor_applies(self):
        tracker = MemoryTracker(0, capacity_bytes=1000, scale_factor=10.0)
        with pytest.raises(CapacityError):
            tracker.allocate("proxy", 200)  # 200 x 10 > 1000

    def test_enforce_off_records_but_does_not_raise(self):
        tracker = MemoryTracker(0, capacity_bytes=100, enforce=False)
        tracker.allocate("big", 500)
        assert tracker.utilization() == 5.0

    def test_relabel_replaces(self):
        tracker = MemoryTracker(0, capacity_bytes=1000)
        tracker.allocate("buffer", 100)
        tracker.allocate("buffer", 300)
        assert tracker.used_bytes == 300

    def test_free_unknown_raises(self):
        tracker = MemoryTracker(0, capacity_bytes=100)
        with pytest.raises(SimulationError):
            tracker.free("nope")


class TestCostModel:
    def test_streaming_vs_random(self):
        model = CostModel(NodeSpec())
        streamed = ComputeWork(streamed_bytes=1e9)
        random = ComputeWork(random_bytes=1e9)
        assert model.compute_time(random) > 5 * model.compute_time(streamed)

    def test_prefetch_speeds_random(self):
        model = CostModel(NodeSpec())
        plain = ComputeWork(random_bytes=1e9)
        prefetched = ComputeWork(random_bytes=1e9, prefetch=True)
        ratio = model.compute_time(plain) / model.compute_time(prefetched)
        assert 2.0 < ratio < 4.0

    def test_compute_overlaps_memory_and_cpu(self):
        model = CostModel(NodeSpec())
        work = ComputeWork(streamed_bytes=1e9, ops=1e9)
        assert model.compute_time(work) == pytest.approx(
            max(model.memory_time(work), model.cpu_time(work))
        )

    def test_bound_by(self):
        model = CostModel(NodeSpec())
        assert model.bound_by(ComputeWork(streamed_bytes=1e12, ops=1)) == "memory"
        assert model.bound_by(ComputeWork(streamed_bytes=1, ops=1e12)) == "cpu"

    def test_step_time_overlap(self):
        assert CostModel.step_time(2.0, 3.0, overlap=True) == 3.0
        assert CostModel.step_time(2.0, 3.0, overlap=False) == 5.0

    def test_work_validation(self):
        with pytest.raises(ValueError):
            ComputeWork(streamed_bytes=-1)

    def test_work_scaled_and_merged(self):
        a = ComputeWork(streamed_bytes=10, ops=4, cpu_efficiency=0.5)
        b = ComputeWork(random_bytes=6, cpu_efficiency=0.25)
        scaled = a.scaled(3)
        assert scaled.streamed_bytes == 30 and scaled.ops == 12
        merged = a.merged(b)
        assert merged.streamed_bytes == 10 and merged.random_bytes == 6
        assert merged.cpu_efficiency == 0.25


class TestCluster:
    def test_superstep_advances_clock(self):
        cluster = Cluster(paper_cluster(2))
        report = cluster.superstep(ComputeWork(streamed_bytes=86e9))
        assert report.time_s == pytest.approx(1.0, rel=0.05)
        assert cluster.elapsed_s == report.time_s

    def test_barrier_waits_for_slowest(self):
        cluster = Cluster(paper_cluster(2))
        work = [ComputeWork(streamed_bytes=86e9), ComputeWork(streamed_bytes=8.6e9)]
        report = cluster.superstep(work)
        assert report.time_s == pytest.approx(1.0, rel=0.05)

    def test_traffic_counted(self):
        cluster = Cluster(paper_cluster(2))
        traffic = np.array([[0.0, 1e9], [1e9, 0.0]])
        cluster.superstep(traffic=traffic)
        metrics = cluster.metrics()
        assert metrics.bytes_sent_total == pytest.approx(2e9)
        assert metrics.peak_network_bandwidth > 5e9  # MPI default

    def test_overlap_hides_comm(self):
        spec = paper_cluster(2)
        # 2.87e9 payload bytes take ~1 s at MPI's sustained rate.
        traffic = np.array([[0.0, 2.87e9], [0.0, 0.0]])
        work = ComputeWork(streamed_bytes=86e9)
        serial = Cluster(spec).superstep(work, traffic, overlap=False).time_s
        overlapped = Cluster(spec).superstep(work, traffic, overlap=True).time_s
        assert overlapped == pytest.approx(1.0, rel=0.1)
        assert serial == pytest.approx(2.0, rel=0.1)

    def test_scale_factor_multiplies_time_and_bytes(self):
        base = Cluster(paper_cluster(2))
        scaled = Cluster(paper_cluster(2), scale_factor=100.0)
        work = ComputeWork(streamed_bytes=1e8)
        traffic = np.array([[0.0, 1e7], [0.0, 0.0]])
        t1 = base.superstep(work, traffic).time_s
        t2 = scaled.superstep(work, traffic).time_s
        # Fixed latency is (correctly) not scaled, so allow 1% slack.
        assert t2 == pytest.approx(100 * t1, rel=0.01)
        assert scaled.metrics().bytes_sent_total == pytest.approx(1e9)

    def test_overhead_not_scaled(self):
        cluster = Cluster(paper_cluster(1), scale_factor=1000.0)
        report = cluster.superstep(overhead_s=2.0)
        assert report.time_s == pytest.approx(2.0)

    def test_iterations(self):
        cluster = Cluster(paper_cluster(1))
        for _ in range(3):
            cluster.superstep(ComputeWork(streamed_bytes=86e9))
            cluster.mark_iteration()
        metrics = cluster.metrics()
        assert metrics.num_iterations == 3
        assert metrics.time_per_iteration_s == pytest.approx(1.0, rel=0.05)

    def test_cpu_utilization_reflects_occupancy(self):
        # A fully network-bound run shows near-zero CPU utilization.
        cluster = Cluster(paper_cluster(2))
        cluster.superstep(traffic=np.array([[0.0, 55e9], [0.0, 0.0]]))
        assert cluster.metrics().cpu_utilization < 0.05

        # A memory-bound run with all cores busy shows high utilization.
        busy = Cluster(paper_cluster(1))
        busy.superstep(ComputeWork(streamed_bytes=86e9))
        assert busy.metrics().cpu_utilization > 0.9

    def test_partial_occupancy_limits_utilization(self):
        # Giraph-style 4-of-24 workers caps utilization near 1/6.
        cluster = Cluster(paper_cluster(1))
        cluster.superstep(ComputeWork(ops=1e12, cores_fraction=4 / 24))
        assert cluster.metrics().cpu_utilization == pytest.approx(4 / 24, rel=0.05)

    def test_memory_accounting_via_cluster(self):
        cluster = Cluster(paper_cluster(2), scale_factor=2.0)
        cluster.allocate_all("graph", 16 * 2**30)
        metrics = cluster.metrics()
        # 16 GiB per node at scale factor 2 -> 32 GiB extrapolated.
        assert metrics.memory_footprint_bytes == pytest.approx(32 * 2**30)
        with pytest.raises(CapacityError):
            cluster.allocate(0, "too-big", 48 * 2**30)

    def test_work_list_length_validated(self):
        cluster = Cluster(paper_cluster(2))
        with pytest.raises(SimulationError):
            cluster.superstep([ComputeWork()])

    def test_bound_by_classification(self):
        cluster = Cluster(paper_cluster(2))
        cluster.superstep(ComputeWork(streamed_bytes=1e9),
                          traffic=np.array([[0.0, 55e9], [0.0, 0.0]]))
        assert cluster.metrics().bound_by() == "network"

    def test_tick(self):
        cluster = Cluster(paper_cluster(1))
        cluster.tick(5.0)
        assert cluster.elapsed_s == 5.0
        with pytest.raises(SimulationError):
            cluster.tick(-1.0)


@settings(max_examples=30, deadline=None)
@given(
    st.floats(min_value=0, max_value=1e12),
    st.floats(min_value=0, max_value=1e12),
    st.floats(min_value=0, max_value=1e12),
)
def test_compute_time_monotone_in_work(streamed, random, ops):
    model = CostModel(NodeSpec())
    base = ComputeWork(streamed_bytes=streamed, random_bytes=random, ops=ops)
    bigger = ComputeWork(streamed_bytes=streamed * 2 + 1,
                         random_bytes=random * 2 + 1, ops=ops * 2 + 1)
    assert model.compute_time(bigger) >= model.compute_time(base)
    assert model.compute_time(base) >= 0
