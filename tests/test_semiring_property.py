"""Property tests: semiring SpMV vs dense oracles; Datalog vs brute force."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks.datalog import (
    AggregateTable,
    Atom,
    Head,
    Rule,
    SocialiteEngine,
    TupleTable,
    Var,
)
from repro.frameworks.matrix import MIN_PLUS, OR_AND, PLUS_TIMES, semiring_spmv
from repro.graph import CSRGraph, EdgeList

from .test_edgelist import edges_strategy


def dense_adjacency(graph):
    n = graph.num_vertices
    adjacency = np.zeros((n, n))
    adjacency[graph.sources(), graph.targets] = 1.0
    return adjacency


@settings(max_examples=40, deadline=None)
@given(edges_strategy(max_vertices=12, max_edges=40))
def test_plus_times_matches_dense(data):
    n, pairs = data
    graph = CSRGraph.from_edges(EdgeList.from_pairs(n, pairs).deduplicate())
    x = np.arange(1.0, n + 1.0)
    expected = dense_adjacency(graph).T @ x
    np.testing.assert_allclose(semiring_spmv(graph, x, PLUS_TIMES), expected)


@settings(max_examples=40, deadline=None)
@given(edges_strategy(max_vertices=12, max_edges=40))
def test_or_and_matches_reachability(data):
    n, pairs = data
    graph = CSRGraph.from_edges(EdgeList.from_pairs(n, pairs).deduplicate())
    x = np.zeros(n)
    x[: max(n // 2, 1)] = 1.0
    adjacency = dense_adjacency(graph)
    expected = ((adjacency.T @ x) > 0).astype(float)
    np.testing.assert_allclose(semiring_spmv(graph, x, OR_AND), expected)


@settings(max_examples=40, deadline=None)
@given(edges_strategy(max_vertices=10, max_edges=30))
def test_min_plus_single_relaxation(data):
    n, pairs = data
    graph = CSRGraph.from_edges(EdgeList.from_pairs(n, pairs).deduplicate())
    x = np.full(n, np.inf)
    x[0] = 0.0
    result = semiring_spmv(graph, x, MIN_PLUS)
    # Expected: 1 for out-neighbors of vertex 0, inf elsewhere.
    expected = np.full(n, np.inf)
    for v in graph.neighbors(0):
        expected[int(v)] = 1.0
    np.testing.assert_allclose(result, expected)


@settings(max_examples=30, deadline=None)
@given(edges_strategy(max_vertices=10, max_edges=25))
def test_datalog_two_hop_matches_brute_force(data):
    """two_hop(z, $SUM(1)) :- edge(x, y), edge(y, z) counts 2-paths."""
    n, pairs = data
    edges = EdgeList.from_pairs(n, pairs).deduplicate()
    engine = SocialiteEngine(num_shards=1, vertex_universe=n)
    engine.add(TupleTable("edge", [edges.src, edges.dst], key_universe=n,
                          tail_nested=True))
    two_hop = AggregateTable("two_hop", n, "sum")
    engine.add(two_hop)

    x, y, z = Var("x"), Var("y"), Var("z")
    rule = Rule(head=Head("two_hop", z, 1.0, agg="sum"),
                body=[Atom("edge", x, y), Atom("edge", y, z)])
    engine.evaluate(rule)

    expected = np.zeros(n)
    pair_set = set(map(tuple, edges.pairs()))
    for (a, b) in pair_set:
        for (c, d) in pair_set:
            if b == c:
                expected[d] += 1
    np.testing.assert_allclose(two_hop.values, expected)


@settings(max_examples=30, deadline=None)
@given(edges_strategy(max_vertices=10, max_edges=25),
       st.integers(min_value=1, max_value=4))
def test_datalog_sharding_does_not_change_results(data, shards):
    """Rule results are shard-count invariant (only traffic changes)."""
    n, pairs = data
    edges = EdgeList.from_pairs(n, pairs).deduplicate()
    results = []
    for num_shards in (1, shards):
        engine = SocialiteEngine(num_shards=num_shards, vertex_universe=n)
        engine.add(TupleTable("edge", [edges.src, edges.dst], num_shards,
                              key_universe=n, tail_nested=True))
        seed = AggregateTable("seed", n, "sum", num_shards)
        seed.combine(np.arange(n), np.ones(n))
        engine.add(seed)
        out = AggregateTable("out", n, "sum", num_shards)
        engine.add(out)
        s, t, v = Var("s"), Var("t"), Var("v")
        rule = Rule(head=Head("out", t, 1.0, agg="sum"),
                    body=[Atom("seed", s, v), Atom("edge", s, t)])
        engine.evaluate(rule)
        results.append(out.values.copy())
    np.testing.assert_allclose(results[0], results[1])
