"""Tests for the sparse-matrix semiring engine and CombBLAS front-end."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED,
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.errors import CapacityError
from repro.frameworks.matrix import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    DistSpMat,
    ProcessGrid,
    combblas,
    semiring_spmv,
)
from repro.graph import CSRGraph, EdgeList


def paper_figure2_graph():
    return CSRGraph.from_edges(
        EdgeList.from_pairs(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    )


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=31)


@pytest.fixture(scope="module")
def graph_small_undirected():
    return rmat_graph(scale=9, edge_factor=6, seed=31, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=8, edge_factor=6, seed=32)


def make_cluster(nodes=1, **kwargs):
    return Cluster(paper_cluster(nodes), **kwargs)


class TestSemirings:
    def test_plus_times_is_matvec(self):
        graph = paper_figure2_graph()
        x = np.array([1.0, 2.0, 3.0, 4.0])
        # y = A^T x: y[1] = x[0]; y[2] = x[0] + x[1]; y[3] = x[1] + x[2].
        y = semiring_spmv(graph, x, PLUS_TIMES)
        np.testing.assert_allclose(y, [0.0, 1.0, 3.0, 5.0])

    def test_or_and_traversal_matches_paper_equation_10(self):
        # Paper: starting from {0, 1}, A^T s = [0, 1, 2, 1] -> nonzeros
        # are the next frontier {1, 2, 3}.
        graph = paper_figure2_graph()
        s = np.array([1.0, 1.0, 0.0, 0.0])
        y = semiring_spmv(graph, s, PLUS_TIMES)
        np.testing.assert_allclose(y, [0.0, 1.0, 2.0, 1.0])
        reachable = semiring_spmv(graph, s, OR_AND)
        np.testing.assert_allclose(reachable, [0.0, 1.0, 1.0, 1.0])

    def test_min_plus_relaxation(self):
        graph = paper_figure2_graph()
        x = np.array([0.0, np.inf, np.inf, np.inf])
        y = semiring_spmv(graph, x, MIN_PLUS,
                          edge_values=np.ones(graph.num_edges))
        # Vertex 1 and 2 get 0 + 1; vertex 3 unreachable in one hop from 0.
        assert y[1] == 1.0 and y[2] == 1.0
        assert np.isinf(y[0]) and np.isinf(y[3])

    def test_shape_validation(self):
        graph = paper_figure2_graph()
        with pytest.raises(ValueError):
            semiring_spmv(graph, np.ones(3))
        with pytest.raises(ValueError):
            semiring_spmv(graph, np.ones(4), edge_values=np.ones(2))


class TestProcessGrid:
    def test_square_grid_for_square_nodes(self):
        grid = ProcessGrid(4)  # 144 procs -> 12x12
        assert grid.grid == 12
        assert grid.num_procs == 144

    def test_nonsquare_nodes_largest_square(self):
        grid = ProcessGrid(2)  # 72 procs -> 8x8 = 64 used
        assert grid.grid == 8

    def test_rank_to_node_covers_all_nodes(self):
        grid = ProcessGrid(4)
        owners = grid.node_of_rank(np.arange(grid.num_procs))
        assert set(owners.tolist()) == {0, 1, 2, 3}

    def test_aggregate_to_nodes_conserves_bytes(self):
        grid = ProcessGrid(2)
        rng = np.random.default_rng(0)
        proc = rng.random((grid.num_procs, grid.num_procs))
        nodes = grid.aggregate_to_nodes(proc)
        assert nodes.sum() == pytest.approx(proc.sum())


class TestDistSpMat:
    def test_block_nnz_conserved(self, graph_small):
        dist = DistSpMat(graph_small, ProcessGrid(4))
        assert dist.block_nnz.sum() == graph_small.num_edges
        assert dist.nnz_per_node().sum() == pytest.approx(graph_small.num_edges)

    def test_spmv_values_match_semiring(self, graph_small):
        dist = DistSpMat(graph_small, ProcessGrid(2))
        x = np.arange(graph_small.num_vertices, dtype=float)
        y, flops, traffic = dist.spmv(x)
        np.testing.assert_allclose(y, semiring_spmv(graph_small, x))
        assert flops == 2.0 * graph_small.num_edges
        assert traffic.shape == (2, 2)

    def test_sparse_spmv_cheaper(self, graph_small):
        dist = DistSpMat(graph_small, ProcessGrid(4))
        dense = np.ones(graph_small.num_vertices)
        sparse_x = np.zeros(graph_small.num_vertices)
        sparse_x[0] = 1.0
        _, flops_dense, traffic_dense = dist.spmv(dense)
        _, flops_sparse, traffic_sparse = dist.spmv(sparse_x, OR_AND,
                                                    sparse_x=True)
        assert flops_sparse < flops_dense
        assert traffic_sparse.sum() < traffic_dense.sum()

    def test_spgemm_counts_paths(self):
        graph = paper_figure2_graph()
        dist = DistSpMat(graph, ProcessGrid(1))
        product, flops, traffic = dist.spgemm_aa()
        # Paper: A^2 row 0 = [0, 0, 1, 2].
        dense = np.asarray(product.todense())
        np.testing.assert_allclose(dense[0], [0, 0, 1, 2])
        count, _ = dist.ewise_mult_sum(product)
        assert count == 2  # nnz-weighted A .* A^2 of Figure 2

    def test_single_node_spgemm_no_wire_traffic(self, graph_triangles):
        dist = DistSpMat(graph_triangles, ProcessGrid(1))
        _, _, traffic = dist.spgemm_aa()
        assert traffic.sum() - np.trace(traffic) >= 0  # diagonal only
        off = traffic.sum() - np.trace(traffic)
        assert off == 0


class TestCombBLAS:
    def test_pagerank_matches_reference(self, graph_small):
        result = combblas.pagerank(graph_small, make_cluster(4), iterations=4)
        np.testing.assert_allclose(
            result.values, pagerank_reference(graph_small, 4), rtol=1e-12
        )

    def test_bfs_matches_reference(self, graph_small_undirected):
        result = combblas.bfs(graph_small_undirected, make_cluster(4))
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_small_undirected, 0)
        )

    def test_bfs_unreached(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(3, [(0, 1), (1, 0)]))
        result = combblas.bfs(graph, make_cluster(1))
        assert result.values[2] == UNREACHED

    def test_triangles_match_reference(self, graph_triangles):
        result = combblas.triangle_count(graph_triangles, make_cluster(4))
        assert result.values == triangle_count_reference(graph_triangles)

    def test_triangle_oom_on_large_scale_factor(self, graph_triangles):
        # The A^2 product at paper-scale extrapolation exceeds node DRAM:
        # the paper's "ran out of memory for the Twitter data set".
        cluster = Cluster(paper_cluster(4), scale_factor=10_000_000.0)
        with pytest.raises(CapacityError):
            combblas.triangle_count(graph_triangles, cluster)

    def test_triangle_expressibility_penalty(self, graph_triangles):
        # The unfused A^2 materialization makes CombBLAS far slower than
        # the native intersection kernel (Table 5: 33.9x single node).
        from repro.frameworks import native
        scale = {"scale_factor": 1e5}
        native_result = native.triangle_count(
            graph_triangles, Cluster(paper_cluster(1), **scale)
        )
        comb_result = combblas.triangle_count(
            graph_triangles, Cluster(paper_cluster(1), **scale)
        )
        assert comb_result.total_time_s > 2.5 * native_result.total_time_s

    def test_cf_converges(self):
        ratings = netflix_like_ratings(scale=9, num_items=48, seed=33)
        result = combblas.collaborative_filtering(
            ratings, make_cluster(4), hidden_dim=8, iterations=3
        )
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]
        assert result.extras["spmvs_per_iteration"] == 8

    def test_pagerank_close_to_native(self, graph_small):
        # Table 5: CombBLAS PageRank ~1.9x native on one node. Run at a
        # paper-scale extrapolation factor so fixed per-superstep costs
        # do not swamp the proxy-sized compute.
        from repro.frameworks import native
        native_result = native.pagerank(
            graph_small, Cluster(paper_cluster(1), scale_factor=1e5),
            iterations=3,
        )
        comb_result = combblas.pagerank(
            graph_small, Cluster(paper_cluster(1), scale_factor=1e5),
            iterations=3,
        )
        ratio = (comb_result.time_per_iteration_s
                 / native_result.time_per_iteration_s)
        assert 1.0 < ratio < 8.0

    def test_validates_arguments(self, graph_small):
        with pytest.raises(ValueError):
            combblas.pagerank(graph_small, make_cluster(1), iterations=0)
        with pytest.raises(ValueError):
            combblas.bfs(graph_small, make_cluster(1), source=-2)
