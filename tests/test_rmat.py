"""Tests for the RMAT generator (paper Section 4.1.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datagen import (
    RMATParams,
    rmat_edges,
    rmat_graph,
    rmat_triangle_graph,
)
from repro.graph import count_triangles_exact, fit_power_law, gini_coefficient


class TestParams:
    def test_default_is_graph500(self):
        params = RMATParams()
        assert (params.a, params.b, params.c) == (0.57, 0.19, 0.19)
        assert abs(params.d - 0.05) < 1e-12

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            RMATParams(a=-0.1)
        with pytest.raises(ValueError):
            RMATParams(a=0.5, b=0.3, c=0.3)


class TestRawEdges:
    def test_sizes(self):
        edges = rmat_edges(scale=8, edge_factor=4, seed=0)
        assert edges.num_vertices == 256
        assert edges.num_edges == 1024

    def test_deterministic_given_seed(self):
        a = rmat_edges(scale=8, edge_factor=4, seed=42)
        b = rmat_edges(scale=8, edge_factor=4, seed=42)
        np.testing.assert_array_equal(a.pairs(), b.pairs())

    def test_seeds_differ(self):
        a = rmat_edges(scale=8, edge_factor=4, seed=1)
        b = rmat_edges(scale=8, edge_factor=4, seed=2)
        assert not np.array_equal(a.pairs(), b.pairs())

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            rmat_edges(scale=0)
        with pytest.raises(ValueError):
            rmat_edges(scale=4, edge_factor=0)

    def test_degree_distribution_is_skewed(self):
        # "Real-world graph data follows a pattern of sparsity that is
        # not uniform but highly skewed" — RMAT must reproduce that.
        edges = rmat_edges(scale=12, edge_factor=16, seed=3)
        degrees = edges.out_degrees() + edges.in_degrees()
        assert gini_coefficient(degrees) > 0.35
        fit = fit_power_law(degrees)
        assert 1.3 < fit.alpha < 4.0

    def test_skew_exceeds_uniform_graph(self):
        rng = np.random.default_rng(0)
        n, e = 1 << 12, 16 << 12
        uniform_degrees = np.bincount(rng.integers(0, n, e), minlength=n)
        rmat_degrees = rmat_edges(scale=12, edge_factor=16, seed=3).out_degrees()
        assert gini_coefficient(rmat_degrees) > 2 * gini_coefficient(uniform_degrees)


class TestGraphs:
    def test_directed_graph_clean(self):
        graph = rmat_graph(scale=9, edge_factor=8, seed=5)
        src = graph.sources()
        assert not np.any(src == graph.targets)  # no self loops
        # No duplicate edges: each (src, target) pair unique.
        keys = src * graph.num_vertices + graph.targets
        assert np.unique(keys).size == keys.size

    def test_undirected_graph_symmetric(self):
        graph = rmat_graph(scale=8, edge_factor=8, seed=6, directed=False)
        pairs = set(zip(graph.sources().tolist(), graph.targets.tolist()))
        assert all((v, u) in pairs for u, v in pairs)

    def test_triangle_graph_oriented_acyclic(self):
        graph = rmat_triangle_graph(scale=8, edge_factor=8, seed=7)
        src = graph.sources()
        assert np.all(src < graph.targets)

    def test_triangle_params_reduce_triangles(self):
        # The paper switches to A=0.45, B=C=0.15 "to reduce the number of
        # triangles in the graph".
        dense = rmat_edges(scale=9, edge_factor=12, seed=8)  # Graph500 params
        from repro.graph import CSRGraph
        t_default = count_triangles_exact(CSRGraph.from_edges(dense.orient_by_id()))
        t_reduced = count_triangles_exact(rmat_triangle_graph(9, 12, seed=8))
        assert t_reduced < t_default


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=3, max_value=9),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=10**6),
)
def test_edges_always_in_range(scale, edge_factor, seed):
    edges = rmat_edges(scale, edge_factor, seed=seed)
    n = 1 << scale
    assert edges.num_vertices == n
    assert edges.src.min() >= 0 and edges.src.max() < n
    assert edges.dst.min() >= 0 and edges.dst.max() < n
    assert edges.num_edges == edge_factor * n
