"""Tests for the cuckoo hash set (GraphLab's triangle-count structure)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import CuckooHashSet


class TestBasics:
    def test_empty(self):
        table = CuckooHashSet()
        assert len(table) == 0
        assert 5 not in table

    def test_add_and_contains(self):
        table = CuckooHashSet()
        assert table.add(42)
        assert 42 in table
        assert len(table) == 1

    def test_duplicate_add_returns_false(self):
        table = CuckooHashSet()
        assert table.add(7)
        assert not table.add(7)
        assert len(table) == 1

    def test_negative_key_rejected(self):
        table = CuckooHashSet()
        with pytest.raises(ValueError):
            table.add(-1)
        with pytest.raises(ValueError):
            -1 in table  # noqa: B015 — membership raising is the assertion

    def test_from_iterable(self):
        table = CuckooHashSet.from_iterable([1, 2, 3, 2, 1])
        assert len(table) == 3
        assert sorted(table) == [1, 2, 3]

    def test_grow_preserves_contents(self):
        table = CuckooHashSet(capacity_hint=4)
        keys = list(range(0, 5000, 7))
        for key in keys:
            table.add(key)
        assert len(table) == len(keys)
        assert all(key in table for key in keys)
        assert 1 not in table

    def test_intersect_count(self):
        table = CuckooHashSet.from_iterable([1, 5, 9, 13])
        assert table.intersect_count([5, 9, 100]) == 2
        assert table.intersect_count([]) == 0

    def test_contains_many_validates(self):
        table = CuckooHashSet.from_iterable([1])
        with pytest.raises(ValueError):
            table.contains_many([-3])

    def test_nbytes_positive(self):
        assert CuckooHashSet().nbytes() > 0


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=10**9), max_size=200))
def test_matches_python_set(keys):
    table = CuckooHashSet.from_iterable(keys)
    model = set(keys)
    assert len(table) == len(model)
    assert sorted(table) == sorted(model)
    for key in list(model)[:20]:
        assert key in table
    for probe in [0, 1, 999999999, 12345]:
        assert (probe in table) == (probe in model)


@settings(max_examples=20, deadline=None)
@given(
    st.sets(st.integers(min_value=0, max_value=5000), max_size=100),
    st.lists(st.integers(min_value=0, max_value=5000), max_size=100),
)
def test_intersection_matches_set(members, probes):
    table = CuckooHashSet.from_iterable(members)
    expected = sum(1 for p in probes if p in members)
    assert table.intersect_count(probes) == expected
