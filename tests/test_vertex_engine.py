"""Tests for the vertex-programming engine and GraphLab/Giraph front-ends."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED,
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.errors import CapacityError, SimulationError
from repro.frameworks.base import GIRAPH, GRAPHLAB
from repro.frameworks.vertex import (
    BFSVertexProgram,
    BSPEngine,
    PageRankVertexProgram,
    bipartite_graph,
    giraph,
    graphlab,
    run_vertex_program,
)
from repro.graph import CSRGraph, EdgeList


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=21)


@pytest.fixture(scope="module")
def graph_small_undirected():
    return rmat_graph(scale=9, edge_factor=6, seed=21, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=8, edge_factor=6, seed=22)


@pytest.fixture(scope="module")
def ratings_small():
    return netflix_like_ratings(scale=9, num_items=48, seed=23)


def make_cluster(nodes=1, **kwargs):
    return Cluster(paper_cluster(nodes), **kwargs)


class TestLiteralInterpreter:
    """The paper's Algorithm 1 / 2, executed vertex by vertex."""

    def test_pagerank_program_matches_reference(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
        )
        values, _ = run_vertex_program(
            PageRankVertexProgram(iterations=4), graph, max_supersteps=10
        )
        expected = pagerank_reference(graph, iterations=4)
        np.testing.assert_allclose(values, expected, rtol=1e-12)

    def test_bfs_program_matches_reference(self):
        graph = CSRGraph.from_edges(
            EdgeList.from_pairs(
                6, [(0, 1), (1, 0), (1, 2), (2, 1), (2, 3), (3, 2), (4, 5),
                    (5, 4)]
            )
        )
        values, _ = run_vertex_program(BFSVertexProgram(source=0), graph)
        np.testing.assert_array_equal(
            values, bfs_reference(graph, 0)
        )

    def test_bfs_program_on_random_graph(self):
        graph = rmat_graph(scale=6, edge_factor=4, seed=5, directed=False)
        values, supersteps = run_vertex_program(BFSVertexProgram(source=0),
                                                graph)
        np.testing.assert_array_equal(values, bfs_reference(graph, 0))
        assert supersteps >= 1

    def test_halting(self):
        graph = CSRGraph.from_edges(EdgeList.from_pairs(2, [(0, 1)]))
        _, supersteps = run_vertex_program(BFSVertexProgram(source=0), graph,
                                           max_supersteps=50)
        assert supersteps <= 3


class TestBSPEngine:
    def test_rejects_unknown_partition_mode(self, graph_small):
        with pytest.raises(SimulationError):
            BSPEngine(graph_small, make_cluster(2), GIRAPH, "3d")

    def test_combining_reduces_messages(self, graph_small):
        cluster = make_cluster(4)
        combined = BSPEngine(graph_small, cluster, GRAPHLAB, "1d")
        raw = BSPEngine(graph_small, cluster, GIRAPH, "1d")
        senders = np.arange(graph_small.num_vertices)
        stats_combined = combined.edge_messages(senders, 8.0)
        stats_raw = raw.edge_messages(senders, 8.0)
        assert stats_combined.messages < stats_raw.messages
        assert stats_combined.traffic.sum() < stats_raw.traffic.sum()

    def test_empty_senders(self, graph_small):
        engine = BSPEngine(graph_small, make_cluster(2), GIRAPH, "1d")
        stats = engine.edge_messages(np.array([], dtype=np.int64), 8.0)
        assert stats.messages == 0
        assert stats.traffic.sum() == 0

    def test_single_node_no_wire_traffic(self, graph_small):
        # The diagonal holds node-local message volume (Giraph buffers
        # those too) but nothing may be destined for another node.
        engine = BSPEngine(graph_small, make_cluster(1), GIRAPH, "1d")
        stats = engine.edge_messages(np.arange(graph_small.num_vertices), 8.0)
        off_diagonal = stats.traffic.sum() - np.trace(stats.traffic)
        assert off_diagonal == 0
        result = giraph.pagerank(graph_small, make_cluster(1), iterations=2)
        assert result.metrics.bytes_sent_total == 0

    def test_serialization_overhead_applied(self, graph_small):
        engine = BSPEngine(graph_small, make_cluster(2), GIRAPH, "1d")
        stats = engine.edge_messages(np.arange(graph_small.num_vertices), 8.0)
        # Giraph's 3x object overhead must appear on the wire.
        assert stats.traffic.sum() >= 2.9 * stats.payload_bytes \
            * (stats.traffic.sum() > 0)

    def test_vertex_cut_sync_traffic(self, graph_small):
        engine = BSPEngine(graph_small, make_cluster(4), GRAPHLAB,
                           "vertex-cut")
        traffic = engine.replication_sync_traffic(
            np.arange(graph_small.num_vertices), 8.0
        )
        assert traffic.sum() > 0
        assert np.all(np.diag(traffic) == 0)

    def test_replication_sync_requires_vertex_cut(self, graph_small):
        engine = BSPEngine(graph_small, make_cluster(2), GIRAPH, "1d")
        with pytest.raises(SimulationError):
            engine.replication_sync_traffic(np.array([0]), 8.0)

    def test_splits_validated(self, graph_small):
        engine = BSPEngine(graph_small, make_cluster(2), GIRAPH, "1d")
        stats = engine.edge_messages(np.arange(10), 8.0)
        with pytest.raises(SimulationError):
            engine.superstep(np.arange(10), [0.0, 0.0], stats, 8.0, splits=0)


class TestGraphLab:
    def test_pagerank_matches_reference(self, graph_small):
        result = graphlab.pagerank(graph_small, make_cluster(2), iterations=4)
        np.testing.assert_allclose(
            result.values, pagerank_reference(graph_small, 4), rtol=1e-12
        )

    def test_bfs_matches_reference(self, graph_small_undirected):
        result = graphlab.bfs(graph_small_undirected, make_cluster(2))
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_small_undirected, 0)
        )

    def test_triangles_match_reference(self, graph_triangles):
        result = graphlab.triangle_count(graph_triangles, make_cluster(2))
        assert result.values == triangle_count_reference(graph_triangles)

    def test_cf_rmse_decreases(self, ratings_small):
        result = graphlab.collaborative_filtering(
            ratings_small, make_cluster(2), hidden_dim=8, iterations=4
        )
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]

    def test_slower_than_native(self, graph_small):
        from repro.frameworks import native
        native_result = native.pagerank(graph_small, make_cluster(1),
                                        iterations=4)
        graphlab_result = graphlab.pagerank(graph_small, make_cluster(1),
                                            iterations=4)
        assert graphlab_result.time_per_iteration_s > \
            native_result.time_per_iteration_s


class TestGiraph:
    def test_pagerank_matches_reference(self, graph_small):
        result = giraph.pagerank(graph_small, make_cluster(2), iterations=3)
        np.testing.assert_allclose(
            result.values, pagerank_reference(graph_small, 3), rtol=1e-12
        )

    def test_bfs_matches_reference(self, graph_small_undirected):
        result = giraph.bfs(graph_small_undirected, make_cluster(2))
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_small_undirected, 0)
        )

    def test_triangles_match_reference(self, graph_triangles):
        result = giraph.triangle_count(graph_triangles, make_cluster(2))
        assert result.values == triangle_count_reference(graph_triangles)

    def test_cpu_utilization_capped_by_workers(self, graph_small):
        result = giraph.pagerank(graph_small, make_cluster(2), iterations=3)
        # 4 workers on 24 cores: utilization can never exceed ~17%.
        assert result.metrics.cpu_utilization <= 4 / 24 + 0.01

    def test_orders_of_magnitude_slower_than_native(self, graph_small):
        from repro.frameworks import native
        native_result = native.pagerank(graph_small, make_cluster(1),
                                        iterations=3)
        giraph_result = giraph.pagerank(graph_small, make_cluster(1),
                                        iterations=3)
        assert giraph_result.time_per_iteration_s > \
            10 * native_result.time_per_iteration_s

    def test_superstep_splitting_bounds_memory(self, graph_triangles):
        # Without splitting, Giraph buffers the entire O(sum d^2) message
        # volume; with 100 splits the footprint shrinks ~100x.
        unsplit = giraph.triangle_count(
            graph_triangles,
            Cluster(paper_cluster(2), enforce_memory=False),
            superstep_splits=1,
        )
        split = giraph.triangle_count(
            graph_triangles,
            Cluster(paper_cluster(2), enforce_memory=False),
            superstep_splits=100,
        )
        # The graph itself is a fixed floor; the buffer share must shrink
        # by roughly the split factor.
        assert split.metrics.memory_footprint_bytes < \
            0.25 * unsplit.metrics.memory_footprint_bytes

    def test_unsplit_triangle_oom_at_paper_scale(self, graph_triangles):
        # At a paper-scale extrapolation factor, the buffered message
        # volume exceeds 64 GB/node: the Section 6.1.3 failure.
        cluster = Cluster(paper_cluster(2), scale_factor=1_000_000.0)
        with pytest.raises(CapacityError):
            giraph.triangle_count(graph_triangles, cluster,
                                  superstep_splits=1)
        # With the 100-way split the same run fits.
        ok = giraph.triangle_count(
            graph_triangles,
            Cluster(paper_cluster(2), scale_factor=1_000_000.0),
            superstep_splits=100,
        )
        assert ok.values >= 0

    def test_split_supersteps_cost_overhead(self, graph_triangles):
        few = giraph.triangle_count(
            graph_triangles, Cluster(paper_cluster(2), enforce_memory=False),
            superstep_splits=1,
        )
        many = giraph.triangle_count(
            graph_triangles, Cluster(paper_cluster(2), enforce_memory=False),
            superstep_splits=100,
        )
        # 100 Hadoop supersteps add ~90s of scheduling overhead.
        assert many.total_time_s > few.total_time_s + 50

    def test_cf_converges(self, ratings_small):
        result = giraph.collaborative_filtering(
            ratings_small, make_cluster(2), hidden_dim=8, iterations=3
        )
        curve = result.extras["rmse_curve"]
        assert curve[-1] < curve[0]
