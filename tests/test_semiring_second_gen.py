"""Property tests for the second-generation algorithm semantics.

Hand-rolled seeded generators (no hypothesis), in the style of
``test_cost_properties.py``: the algebraic fixpoint formulations —
min-plus relaxation for SSSP, min-label propagation for WCC — must agree
with the classical references (Dijkstra, union-find) on a grid of random
graphs that deliberately include disconnected pieces, isolated vertices,
self-loops, and duplicate edges, and the registered kernels must agree
with both under either backend.
"""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED_DIST,
    edge_weights_for,
    kcore_reference,
    label_propagation_reference,
    lp_step_reference,
    sssp_reference,
    validate_components,
    validate_kcore,
    validate_sssp,
    wcc_reference,
)
from repro.graph import CSRGraph, EdgeList
from repro.kernels.backend import INTERPRETED, use_backend
from repro.kernels.registry import kernel

SEEDS = tuple(range(20, 30))


def random_graph(seed, num_vertices=48):
    """Messy random undirected graph: self-loops, dupes, isolated parts."""
    rng = np.random.default_rng(seed)
    num_edges = int(rng.integers(num_vertices // 2, 3 * num_vertices))
    # Sampling ids from [0, n) leaves some vertices untouched (isolated)
    # and produces duplicate pairs; add explicit self-loops on top.
    pairs = list(zip(rng.integers(0, num_vertices, num_edges).tolist(),
                     rng.integers(0, num_vertices, num_edges).tolist()))
    pairs += [(int(v), int(v)) for v in rng.integers(0, num_vertices, 4)]
    edges = EdgeList.from_pairs(num_vertices, pairs).symmetrize()
    return CSRGraph.from_edges(edges)


# ---------------------------------------------------------------------------
# SSSP: min-plus fixpoint == Dijkstra.
# ---------------------------------------------------------------------------

def minplus_fixpoint(graph, source):
    """Dense min-plus Bellman iteration to fixpoint (the semiring view)."""
    n = graph.num_vertices
    adjacency = np.full((n, n), np.inf)
    np.minimum.at(adjacency, (graph.sources(), graph.targets),
                  edge_weights_for(graph))
    distances = np.full(n, np.inf)
    distances[source] = 0.0
    while True:
        relaxed = np.minimum(distances,
                             (distances[:, None] + adjacency).min(axis=0))
        if np.array_equal(relaxed, distances):
            return distances
        distances = relaxed


class TestSSSPProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_minplus_fixpoint_matches_dijkstra(self, seed):
        graph = random_graph(seed)
        source = int(np.argmax(graph.out_degrees()))
        np.testing.assert_array_equal(minplus_fixpoint(graph, source),
                                      sssp_reference(graph, source))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_relax_kernel_fixpoint_matches_dijkstra(self, seed):
        graph = random_graph(seed)
        source = int(np.argmax(graph.out_degrees()))
        relax = kernel("sssp", "relax")().prepare(graph)
        distances = np.full(graph.num_vertices, UNREACHED_DIST)
        distances[source] = 0.0
        frontier = np.array([source], dtype=np.int64)
        while frontier.size:
            (distances, frontier), _ = relax.step(distances, frontier)
        np.testing.assert_array_equal(distances,
                                      sssp_reference(graph, source))

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_distances_satisfy_triangle_inequality(self, seed):
        graph = random_graph(seed)
        source = int(np.argmax(graph.out_degrees()))
        assert validate_sssp(graph, source, sssp_reference(graph, source))

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_self_loops_never_change_distances(self, seed):
        graph = random_graph(seed)
        pairs = list(zip(graph.sources().tolist(), graph.targets.tolist()))
        stripped = CSRGraph.from_edges(
            EdgeList.from_pairs(graph.num_vertices,
                                [p for p in pairs if p[0] != p[1]]))
        source = int(np.argmax(stripped.out_degrees()))
        np.testing.assert_array_equal(sssp_reference(graph, source),
                                      sssp_reference(stripped, source))


# ---------------------------------------------------------------------------
# WCC: min-label fixpoint == union-find.
# ---------------------------------------------------------------------------

def min_label_fixpoint(graph):
    """Dense min-propagation over edges to fixpoint."""
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    sources, targets = graph.sources(), graph.targets
    while True:
        new = labels.copy()
        np.minimum.at(new, targets, labels[sources])
        if np.array_equal(new, labels):
            return labels
        labels = new


class TestWCCProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_min_label_fixpoint_matches_union_find(self, seed):
        graph = random_graph(seed)
        np.testing.assert_array_equal(min_label_fixpoint(graph),
                                      wcc_reference(graph))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_propagate_kernel_fixpoint_matches_union_find(self, seed):
        graph = random_graph(seed)
        push = kernel("wcc", "propagate")().prepare(graph)
        labels = np.arange(graph.num_vertices, dtype=np.int64)
        frontier = labels.copy()
        while frontier.size:
            (labels, frontier), _ = push.step(labels, frontier)
        np.testing.assert_array_equal(labels, wcc_reference(graph))

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_labels_validate_and_count_components(self, seed):
        graph = random_graph(seed)
        labels = wcc_reference(graph)
        assert validate_components(graph, labels)
        # Every label is the min id of its component, so the label set
        # is exactly one representative per component.
        representatives = np.unique(labels)
        np.testing.assert_array_equal(labels[representatives],
                                      representatives)


# ---------------------------------------------------------------------------
# k-core and label propagation invariants.
# ---------------------------------------------------------------------------

class TestKCoreProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_peel_kernel_matches_reference(self, seed):
        graph = random_graph(seed)
        peel = kernel("k_core", "peel")().prepare(graph)
        degrees = graph.out_degrees().astype(np.int64)
        core = np.zeros(graph.num_vertices, dtype=np.int64)
        alive = np.ones(graph.num_vertices, dtype=bool)
        k = 1
        while alive.any():
            while True:
                (removed, degrees), _ = peel.step(degrees, alive, k)
                if removed.size == 0:
                    break
                core[removed] = k - 1
                alive[removed] = False
            k += 1
        np.testing.assert_array_equal(core, kcore_reference(graph))

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_core_numbers_validate(self, seed):
        graph = random_graph(seed)
        core = kcore_reference(graph)
        assert validate_kcore(graph, core)
        assert core.max() <= graph.out_degrees().max()


class TestLabelPropagationProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_sync_kernel_matches_reference_per_round(self, seed):
        graph = random_graph(seed)
        sync = kernel("label_propagation", "sync")().prepare(graph)
        labels = label_propagation_reference(graph, iterations=0, seed=0)
        for _ in range(3):
            expected = lp_step_reference(graph, labels)
            labels, _ = sync.step(labels)
            np.testing.assert_array_equal(labels, expected)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_interpreted_backend_agrees(self, seed):
        graph = random_graph(seed)
        expected = label_propagation_reference(graph, iterations=3, seed=0)
        with use_backend(INTERPRETED):
            sync = kernel("label_propagation", "sync")().prepare(graph)
            labels = label_propagation_reference(graph, iterations=0, seed=0)
            for _ in range(3):
                labels, _ = sync.step(labels)
        np.testing.assert_array_equal(labels, expected)

    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_labels_always_drawn_from_initial_permutation(self, seed):
        graph = random_graph(seed)
        labels = label_propagation_reference(graph, iterations=3, seed=0)
        assert set(labels.tolist()) <= set(range(graph.num_vertices))
