"""Tests for the Galois worklist engine and front-end."""

import numpy as np
import pytest

from repro.algorithms import (
    UNREACHED,
    bfs_reference,
    pagerank_reference,
    triangle_count_reference,
)
from repro.cluster import Cluster, paper_cluster
from repro.datagen import netflix_like_ratings, rmat_graph, rmat_triangle_graph
from repro.errors import ReproError
from repro.frameworks.task import (
    BulkSynchronousExecutor,
    galois,
    parallel_for_each,
)
from repro.graph import EdgeList


@pytest.fixture(scope="module")
def graph_small():
    return rmat_graph(scale=9, edge_factor=6, seed=51)


@pytest.fixture(scope="module")
def graph_small_undirected():
    return rmat_graph(scale=9, edge_factor=6, seed=51, directed=False)


@pytest.fixture(scope="module")
def graph_triangles():
    return rmat_triangle_graph(scale=8, edge_factor=6, seed=52)


def make_cluster(**kwargs):
    return Cluster(paper_cluster(1), **kwargs)


class TestWorklist:
    def test_bfs_via_executor_matches_reference(self):
        # Algorithm 3 of the paper, literally: worklists per level.
        graph = rmat_graph(scale=6, edge_factor=4, seed=7, directed=False)
        levels = np.full(graph.num_vertices, UNREACHED, dtype=np.int64)
        levels[0] = 0

        def work(vertex, push):
            for neighbor in graph.neighbors(vertex):
                neighbor = int(neighbor)
                if levels[neighbor] == UNREACHED:
                    levels[neighbor] = levels[vertex] + 1
                    push(neighbor)

        executor = BulkSynchronousExecutor(work)
        rounds = executor.run([0])
        np.testing.assert_array_equal(levels, bfs_reference(graph, 0))
        finite = levels[levels != UNREACHED]
        assert rounds == finite.max() + 1

    def test_executor_counts_items(self):
        executor = BulkSynchronousExecutor(lambda item, push: None)
        executor.run([1, 2, 3])
        assert executor.items_processed == 3

    def test_executor_round_limit(self):
        def ping(item, push):
            push(item)  # never quiesces

        with pytest.raises(ReproError):
            BulkSynchronousExecutor(ping).run([0], max_rounds=5)

    def test_parallel_for_each(self):
        seen = []
        count = parallel_for_each([5, 6], seen.append)
        assert count == 2 and seen == [5, 6]


class TestGalois:
    def test_rejects_multi_node(self, graph_small):
        with pytest.raises(ReproError, match="single-node"):
            galois.pagerank(graph_small, Cluster(paper_cluster(4)))

    def test_pagerank_matches_reference(self, graph_small):
        result = galois.pagerank(graph_small, make_cluster(), iterations=4)
        np.testing.assert_allclose(
            result.values, pagerank_reference(graph_small, 4), rtol=1e-12
        )

    def test_bfs_matches_reference(self, graph_small_undirected):
        result = galois.bfs(graph_small_undirected, make_cluster())
        np.testing.assert_array_equal(
            result.values, bfs_reference(graph_small_undirected, 0)
        )

    def test_triangles_match_reference(self, graph_triangles):
        result = galois.triangle_count(graph_triangles, make_cluster())
        assert result.values == triangle_count_reference(graph_triangles)

    def test_cf_sgd_converges(self):
        ratings = netflix_like_ratings(scale=9, num_items=48, seed=53)
        result = galois.collaborative_filtering(
            ratings, make_cluster(), hidden_dim=8, iterations=4, seed=1
        )
        curve = result.extras["rmse_curve"]
        assert result.extras["method"] == "sgd"
        assert curve[-1] < curve[0]

    def test_close_to_native_pagerank(self, graph_small):
        # Table 5: Galois PageRank within ~1.2x of native.
        from repro.frameworks import native
        scale = 1e5
        native_result = native.pagerank(
            graph_small, make_cluster(scale_factor=scale), iterations=3
        )
        galois_result = galois.pagerank(
            graph_small, make_cluster(scale_factor=scale), iterations=3
        )
        ratio = (galois_result.time_per_iteration_s
                 / native_result.time_per_iteration_s)
        assert 1.0 <= ratio < 3.0

    def test_triangle_gap_larger_than_pagerank_gap(self, graph_triangles):
        # Table 5: the TC gap (2.5x) exceeds the PageRank gap (1.2x)
        # because merges read more than bit-vector probes.
        from repro.frameworks import native
        scale = 1e5
        native_tc = native.triangle_count(
            graph_triangles, make_cluster(scale_factor=scale)
        )
        galois_tc = galois.triangle_count(
            graph_triangles, make_cluster(scale_factor=scale)
        )
        tc_ratio = galois_tc.total_time_s / native_tc.total_time_s
        assert tc_ratio > 1.3

    def test_validates_arguments(self, graph_small):
        with pytest.raises(ValueError):
            galois.pagerank(graph_small, make_cluster(), iterations=0)
        with pytest.raises(ValueError):
            galois.bfs(graph_small, make_cluster(), source=-1)
