"""Legacy setup shim.

The execution environment is offline and its setuptools predates PEP 660
editable wheels, so ``pip install -e .`` needs this classic entry point
(pip falls back to ``setup.py develop`` with ``--no-use-pep517``).
"""

from setuptools import setup

setup()
